module Telemetry = Ipcp_telemetry.Telemetry

let default_jobs () = Domain.recommended_domain_count ()

(* Sequential reference path: used for jobs <= 1 and for empty inputs.
   Kept as a literal List.map so `--jobs 1` is exactly the pre-engine
   behaviour (same evaluation order, same telemetry nesting). *)
let map_seq f items = List.map f items

let map ?(jobs = default_jobs ()) f items =
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  let jobs = min jobs n in
  if jobs <= 1 then map_seq f items
  else begin
    Telemetry.add "engine.pools" 1;
    Telemetry.add "engine.domains" jobs;
    Telemetry.add "engine.tasks" n;
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let parent_profiled = Telemetry.enabled () in
    (* Each worker drains the cursor; distinct indices mean no two domains
       ever write the same slot.  A worker's collector exists only when the
       parent is profiling, and is returned for the post-join merge. *)
    let worker () =
      let run_tasks () =
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            (match f tasks.(i) with
            | r -> results.(i) <- Some r
            | exception e -> errors.(i) <- Some e);
            loop ()
          end
        in
        loop ()
      in
      if not parent_profiled then begin
        run_tasks ();
        None
      end
      else begin
        let collector = Telemetry.create () in
        Telemetry.with_reporter collector run_tasks;
        Some collector
      end
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    let collectors = Array.map Domain.join domains in
    (match Telemetry.current () with
    | None -> ()
    | Some sink ->
      Array.iteri
        (fun i collector ->
          match collector with
          | None -> ()
          | Some c ->
            Telemetry.merge ~under:(Printf.sprintf "pool:domain-%d" i)
              ~into:sink c)
        collectors);
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list (Array.map Option.get results)
  end

let iter ?jobs f items = ignore (map ?jobs f items)
