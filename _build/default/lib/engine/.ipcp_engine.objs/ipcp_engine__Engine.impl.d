lib/engine/engine.ml: Array Atomic Domain Ipcp_support Ipcp_telemetry List Option Printexc Printf
