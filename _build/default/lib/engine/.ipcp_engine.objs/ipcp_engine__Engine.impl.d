lib/engine/engine.ml: Array Atomic Domain Ipcp_telemetry List Option Printf
