lib/engine/engine.mli: Printexc
