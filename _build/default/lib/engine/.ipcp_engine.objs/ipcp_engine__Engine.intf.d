lib/engine/engine.mli:
