(** FIFO worklist with a membership set, so an item is present at most once.

    Iterative data-flow solvers in this repository (the MOD/REF fixpoint, the
    interprocedural constant propagation solver, SCCP) all share this shape:
    pull an item, process it, push its affected neighbours.  Keeping a
    membership set bounds the queue size by the number of distinct items. *)

type 'a t = {
  queue : 'a Queue.t;
  mutable members : ('a, unit) Hashtbl.t;
}

let create () = { queue = Queue.create (); members = Hashtbl.create 64 }

let is_empty t = Queue.is_empty t.queue

let length t = Queue.length t.queue

let push t x =
  if not (Hashtbl.mem t.members x) then begin
    Hashtbl.replace t.members x ();
    Queue.push x t.queue
  end

let push_list t xs = List.iter (push t) xs

let pop t =
  match Queue.pop t.queue with
  | x ->
    Hashtbl.remove t.members x;
    Some x
  | exception Queue.Empty -> None

(** [drain t f] repeatedly pops items and applies [f] until the worklist is
    empty.  [f] may push new items. *)
let drain t f =
  let rec loop () =
    match pop t with
    | None -> ()
    | Some x ->
      f x;
      loop ()
  in
  loop ()

let of_list xs =
  let t = create () in
  push_list t xs;
  t
