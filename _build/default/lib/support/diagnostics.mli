(** Accumulating located diagnostics: the frontend's recovery mode
    appends every problem it finds here instead of raising on the first,
    and the CLI prints the batch to stderr.

    Lives below the frontend, so coordinates are raw (file, line, col);
    [Loc.diagnostic] converts from frontend locations. *)

type severity = Error | Warning

type diagnostic = {
  d_file : string;
  d_line : int;  (** 1-based *)
  d_col : int;  (** 1-based *)
  d_severity : severity;
  d_code : string;  (** stable machine-readable code, e.g. ["E-PARSE"] *)
  d_message : string;
}

type t

val create : unit -> t
val add : t -> diagnostic -> unit

(** Build a diagnostic record (defaults to severity {!Error}). *)
val diagnostic :
  ?severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  code:string ->
  string ->
  diagnostic

val is_empty : t -> bool
val count : t -> int
val error_count : t -> int
val warning_count : t -> int

(** In report order. *)
val to_list : t -> diagnostic list

val severity_name : severity -> string

(** ["file:line:col: error[E-PARSE]: message"]. *)
val pp_diagnostic : diagnostic Fmt.t

(** All diagnostics, one per line, in report order. *)
val pp : t Fmt.t

(** ["3 error(s)"], plus warnings when present. *)
val pp_summary : t Fmt.t
