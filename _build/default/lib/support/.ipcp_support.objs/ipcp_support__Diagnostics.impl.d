lib/support/diagnostics.ml: Fmt List
