lib/support/diagnostics.mli: Fmt
