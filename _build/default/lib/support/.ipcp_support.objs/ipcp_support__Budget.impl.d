lib/support/budget.ml: Fault Fmt Int64 Monotonic_clock Option
