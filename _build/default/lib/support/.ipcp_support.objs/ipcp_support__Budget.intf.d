lib/support/budget.mli: Fmt
