lib/support/stats.ml: Float Int List
