lib/support/stats.mli:
