lib/support/fault.ml: Atomic Char Fun Int64 String Sys
