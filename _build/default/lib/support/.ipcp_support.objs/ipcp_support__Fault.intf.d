lib/support/fault.mli:
