lib/support/prng.mli:
