lib/support/worklist.mli:
