(** Small numeric summaries for characteristics reports. *)

val mean : int list -> float

(** Lower-median of an integer list; 0 for the empty list. *)
val median : int list -> int

val sum : int list -> int
val max_opt : int list -> int option
val min_opt : int list -> int option
