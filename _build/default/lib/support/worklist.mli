(** FIFO worklist with a membership set: an item is queued at most once. *)

type 'a t

(** Create an empty worklist. *)
val create : unit -> 'a t

val is_empty : 'a t -> bool

(** Number of items currently queued. *)
val length : 'a t -> int

(** Enqueue an item unless it is already queued. *)
val push : 'a t -> 'a -> unit

val push_list : 'a t -> 'a list -> unit

(** Dequeue the oldest item, or [None] if empty. *)
val pop : 'a t -> 'a option

(** [drain t f] pops items and applies [f] until empty; [f] may push. *)
val drain : 'a t -> ('a -> unit) -> unit

val of_list : 'a list -> 'a t
