(** Deterministic pseudo-random number generator (splitmix64).

    The workload generator and the property tests need reproducible random
    streams that do not depend on OCaml's global [Random] state; a tiny
    self-contained splitmix64 keeps runs stable across OCaml versions. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] returns a uniform value in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [range t lo hi] returns a uniform value in [lo, hi] inclusive. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

(** [chance t p] is true with probability [p] (clamped to [0,1]). *)
let chance t p =
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  float_of_int (int t 1_000_000) < p *. 1_000_000.0

(** Pick a uniformly random element of a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** Shuffle a list (Fisher-Yates on an intermediate array). *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
