(** Deterministic splitmix64 pseudo-random number generator. *)

type t

(** Create a generator from an integer seed; equal seeds give equal streams. *)
val create : int -> t

val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** Uniform choice from a non-empty list. *)
val choose : t -> 'a list -> 'a

val shuffle : t -> 'a list -> 'a list
