(** Composable resource budgets for the analysis worklists.

    A budget bounds a single pass (one solver drain, one SCCP run, one
    complete-propagation iteration) by step count and/or wall-clock
    deadline.  Exhaustion is sticky: once {!tick} returns [false] it
    returns [false] forever and {!exhausted} names the reason, which the
    pass reports in its [degraded] result field after widening its
    remaining work to ⊥ (always sound on the IPCP lattice — merely less
    precise).

    Budgets are deliberately per-pass and single-domain: passes that run
    inside engine worker domains (per-procedure SCCP under
    [Substitute.apply ~jobs]) each get a fresh budget derived from the
    configuration, so no mutable budget state is ever shared across
    domains and results stay byte-identical for every [--jobs] value. *)

type reason =
  | Steps of int  (** the step limit that was exhausted *)
  | Deadline of int  (** the deadline in milliseconds that passed *)
  | Starved of string  (** fault injection starved this budget (label) *)

type t = {
  label : string;
  max_steps : int option;
  deadline_ms : int option;
  deadline_ns : int64 option;
  clock : unit -> int64;
  starved : bool;
  mutable steps : int;
  mutable exhausted : reason option;
}

let default_clock () = Monotonic_clock.now ()

let create ?(clock = default_clock) ?(label = "budget") ?max_steps ?deadline_ms
    () =
  (* A starvation fault shrinks the step allowance at creation; the pass
     then degrades through the ordinary widening path. *)
  let starve = Fault.starvation ("budget:" ^ label) in
  let starved = starve <> None in
  let max_steps =
    match (starve, max_steps) with
    | None, ms -> ms
    | Some s, None -> Some s
    | Some s, Some m -> Some (min s m)
  in
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add (clock ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
      deadline_ms
  in
  {
    label;
    max_steps;
    deadline_ms;
    deadline_ns;
    clock;
    starved;
    steps = 0;
    exhausted = None;
  }

let label t = t.label
let is_limited t = t.max_steps <> None || t.deadline_ns <> None
let steps_used t = t.steps
let exhausted t = t.exhausted

let tick t =
  match t.exhausted with
  | Some _ -> false
  | None ->
    t.steps <- t.steps + 1;
    (match t.max_steps with
    | Some limit when t.steps > limit ->
      t.exhausted <-
        Some (if t.starved then Starved t.label else Steps limit)
    | _ -> ());
    (match (t.exhausted, t.deadline_ns) with
    | None, Some d when Int64.compare (t.clock ()) d > 0 ->
      t.exhausted <-
        Some (Deadline (Option.value t.deadline_ms ~default:0))
    | _ -> ());
    t.exhausted = None

let ok t = t.exhausted = None

let pp_reason ppf = function
  | Steps n -> Fmt.pf ppf "step budget exhausted after %d steps" n
  | Deadline ms -> Fmt.pf ppf "deadline of %dms exceeded" ms
  | Starved label -> Fmt.pf ppf "budget starved by fault injection (%s)" label

let reason_to_string r = Fmt.str "%a" pp_reason r

let equal_reason (a : reason) (b : reason) = a = b
