(** Small numeric summaries used by the Table 1 characteristics report. *)

let mean = function
  | [] -> 0.0
  | xs ->
    let sum = List.fold_left ( + ) 0 xs in
    float_of_int sum /. float_of_int (List.length xs)

(** Median of an integer list; the lower middle element for even lengths
    (matching how whole-line counts are usually reported). *)
let median = function
  | [] -> 0
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    List.nth sorted ((n - 1) / 2)

let sum = List.fold_left ( + ) 0

let max_opt = function [] -> None | x :: xs -> Some (List.fold_left max x xs)

let min_opt = function [] -> None | x :: xs -> Some (List.fold_left min x xs)
