(** Small numeric summaries used by the Table 1 characteristics report. *)

let mean = function
  | [] -> 0.0
  | xs ->
    let sum = List.fold_left ( + ) 0 xs in
    float_of_int sum /. float_of_int (List.length xs)

(** Median of an integer list; the lower middle element for even lengths
    (matching how whole-line counts are usually reported). *)
let median = function
  | [] -> 0
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    List.nth sorted ((n - 1) / 2)

let sum = List.fold_left ( + ) 0

(** Population standard deviation; 0.0 for empty and singleton lists. *)
let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq_sum =
      List.fold_left
        (fun acc x ->
          let d = float_of_int x -. m in
          acc +. (d *. d))
        0.0 xs
    in
    sqrt (sq_sum /. float_of_int (List.length xs))

(** [percentile xs p] for [p] in [0..100], by the nearest-rank method
    (ceil(p/100 · n), so [percentile xs 50.0 = median xs]); 0 for the
    empty list. *)
let percentile xs p =
  match xs with
  | [] -> 0
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (Int.max 0 (rank - 1))

let max_opt = function [] -> None | x :: xs -> Some (List.fold_left max x xs)

let min_opt = function [] -> None | x :: xs -> Some (List.fold_left min x xs)
