lib/interp/interp.ml: Array Ast Float Fmt Hashtbl Ipcp_frontend List Prog String
