lib/frontend/implicit.ml: Ast String
