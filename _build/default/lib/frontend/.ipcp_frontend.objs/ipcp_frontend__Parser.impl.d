lib/frontend/parser.ml: Ast Ipcp_support Lexer List Loc Token
