lib/frontend/loc.mli: Fmt Format
