lib/frontend/loc.mli: Fmt Format Ipcp_support
