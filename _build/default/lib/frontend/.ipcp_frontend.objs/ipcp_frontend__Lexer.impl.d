lib/frontend/lexer.ml: Buffer Char List Loc String Token
