lib/frontend/loc.ml: Fmt Ipcp_support
