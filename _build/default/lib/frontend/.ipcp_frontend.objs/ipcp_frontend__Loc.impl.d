lib/frontend/loc.ml: Fmt
