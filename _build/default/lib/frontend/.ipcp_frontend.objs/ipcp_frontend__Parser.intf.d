lib/frontend/parser.mli: Ast Ipcp_support
