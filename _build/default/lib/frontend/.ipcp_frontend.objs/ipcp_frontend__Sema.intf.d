lib/frontend/sema.mli: Ast Prog
