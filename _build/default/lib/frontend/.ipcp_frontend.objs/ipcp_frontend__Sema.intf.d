lib/frontend/sema.mli: Ast Ipcp_support Prog
