lib/frontend/ast.ml: Fmt List Loc Option String
