lib/frontend/prog.ml: Ast Hashtbl List Loc Map Option Printf Set
