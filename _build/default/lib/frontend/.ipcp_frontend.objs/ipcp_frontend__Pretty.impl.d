lib/frontend/pretty.ml: Ast Fmt Implicit List Option Printf Prog String
