lib/frontend/sema.ml: Ast Hashtbl Implicit Ipcp_support Ipcp_telemetry List Loc Option Parser Printf Prog
