lib/frontend/sema.ml: Ast Hashtbl Implicit List Loc Option Parser Printf Prog
