(** Recursive-descent parser for MiniFort. *)

(** Parse a whole source file into raw program units.
    Raises {!Loc.Error} on syntax errors. *)
val parse_program : ?file:string -> string -> Ast.program

(** Parse a single expression (testing / workload-generation helper). *)
val parse_expression : ?file:string -> string -> Ast.expr
