(** Hand-written lexer for MiniFort source text. *)

type t

(** Create a lexer over a whole source string. *)
val create : ?file:string -> string -> t

(** Next token with its starting location.  After the end of input, returns
    [EOF] forever.  Raises {!Loc.Error} on malformed input. *)
val next : t -> Token.t * Loc.t

(** Tokenize an entire source string; the result ends with [EOF]. *)
val tokenize : ?file:string -> string -> (Token.t * Loc.t) list
