(** Hand-written lexer for MiniFort source text. *)

type t

(** Create a lexer over a whole source string. *)
val create : ?file:string -> string -> t

(** Next token with its starting location.  After the end of input, returns
    [EOF] forever.  Raises {!Loc.Error} on malformed input. *)
val next : t -> Token.t * Loc.t

(** Tokenize an entire source string; the result ends with [EOF]. *)
val tokenize : ?file:string -> string -> (Token.t * Loc.t) list

(** Like {!tokenize}, but lexical errors are passed to [report] and the
    lexer resynchronizes at the next end of line instead of raising, so
    every malformed literal in the file is reported. *)
val tokenize_collect :
  ?file:string ->
  report:(Loc.t -> string -> unit) ->
  string ->
  (Token.t * Loc.t) list
