(** Hand-written lexer for MiniFort.

    The language is case-insensitive (everything is lowercased), newlines are
    significant, [!] starts a comment that runs to end of line, and a [&] as
    the last non-blank character of a line continues the statement onto the
    next line.  Dotted operators ([.lt.], [.and.], ...) follow FORTRAN
    spelling. *)

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
  mutable last_was_newline : bool;
      (** used to collapse runs of blank lines into one NEWLINE *)
}

let create ?(file = "<input>") src =
  { src; file; pos = 0; line = 1; bol = 0; last_was_newline = true }

let loc t = Loc.make ~file:t.file ~line:t.line ~col:(t.pos - t.bol + 1)

let at_end t = t.pos >= String.length t.src

let peek_char t = if at_end t then '\000' else t.src.[t.pos]

let peek_char2 t =
  if t.pos + 1 >= String.length t.src then '\000' else t.src.[t.pos + 1]

let advance t = t.pos <- t.pos + 1

let newline t =
  advance t;
  t.line <- t.line + 1;
  t.bol <- t.pos

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c
let lower c = Char.lowercase_ascii c

(* Skip spaces, tabs, carriage returns and comments; stop at newline. *)
let rec skip_blanks t =
  match peek_char t with
  | ' ' | '\t' | '\r' ->
    advance t;
    skip_blanks t
  | '!' ->
    while (not (at_end t)) && peek_char t <> '\n' do
      advance t
    done;
    skip_blanks t
  | '&' ->
    (* Continuation: consume '&', trailing blanks/comment, and the newline. *)
    let save = t.pos in
    advance t;
    let rec to_eol () =
      match peek_char t with
      | ' ' | '\t' | '\r' ->
        advance t;
        to_eol ()
      | '!' ->
        while (not (at_end t)) && peek_char t <> '\n' do
          advance t
        done;
        to_eol ()
      | '\n' ->
        newline t;
        true
      | _ -> false
    in
    if to_eol () then skip_blanks t
    else begin
      (* A '&' not at end of line is an error; restore and let scan report. *)
      t.pos <- save
    end
  | _ -> ()

let lex_number t =
  let start = t.pos in
  let start_loc = loc t in
  while is_digit (peek_char t) do
    advance t
  done;
  let is_real =
    (* A '.' starts a fractional part only if NOT followed by a letter
       (".lt." etc. are operators) — FORTRAN's classic lexical wart. *)
    peek_char t = '.' && not (is_alpha (peek_char2 t))
  in
  if is_real then begin
    advance t;
    while is_digit (peek_char t) do
      advance t
    done;
    (match peek_char t with
    | 'e' | 'E' | 'd' | 'D' ->
      let save = t.pos in
      advance t;
      (match peek_char t with '+' | '-' -> advance t | _ -> ());
      if is_digit (peek_char t) then
        while is_digit (peek_char t) do
          advance t
        done
      else t.pos <- save
    | _ -> ());
    let text = String.sub t.src start (t.pos - start) in
    let text = String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) text in
    match float_of_string_opt text with
    | Some f -> Token.REAL f
    | None -> Loc.error start_loc "malformed real literal %S" text
  end
  else begin
    let text = String.sub t.src start (t.pos - start) in
    match int_of_string_opt text with
    | Some n -> Token.INT n
    | None -> Loc.error start_loc "integer literal out of range: %s" text
  end

let lex_ident t =
  let start = t.pos in
  while is_alnum (peek_char t) do
    advance t
  done;
  let text = String.lowercase_ascii (String.sub t.src start (t.pos - start)) in
  match Token.of_keyword text with Some kw -> kw | None -> Token.IDENT text

(* Dotted operator or start of a real literal like ".5". *)
let lex_dotted t =
  let start_loc = loc t in
  if is_digit (peek_char2 t) then begin
    (* .5 style real literal *)
    let start = t.pos in
    advance t;
    while is_digit (peek_char t) do
      advance t
    done;
    let text = "0" ^ String.sub t.src start (t.pos - start) in
    match float_of_string_opt text with
    | Some f -> Token.REAL f
    | None -> Loc.error start_loc "malformed real literal"
  end
  else begin
    advance t;
    let start = t.pos in
    while is_alpha (peek_char t) do
      advance t
    done;
    let word = String.lowercase_ascii (String.sub t.src start (t.pos - start)) in
    if peek_char t <> '.' then
      Loc.error start_loc "malformed dotted operator .%s" word;
    advance t;
    match word with
    | "lt" -> Token.LT
    | "le" -> Token.LE
    | "gt" -> Token.GT
    | "ge" -> Token.GE
    | "eq" -> Token.EQ
    | "ne" -> Token.NE
    | "and" -> Token.AND
    | "or" -> Token.OR
    | "not" -> Token.NOT
    | "true" -> Token.TRUE
    | "false" -> Token.FALSE
    | w -> Loc.error start_loc "unknown dotted operator .%s." w
  end

let lex_string t =
  let start_loc = loc t in
  let quote = peek_char t in
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end t then Loc.error start_loc "unterminated string literal"
    else
      let c = peek_char t in
      if c = quote then
        if peek_char2 t = quote then begin
          (* doubled quote escapes itself *)
          Buffer.add_char buf quote;
          advance t;
          advance t;
          go ()
        end
        else advance t
      else if c = '\n' then Loc.error start_loc "unterminated string literal"
      else begin
        Buffer.add_char buf c;
        advance t;
        go ()
      end
  in
  go ();
  Token.STRING (Buffer.contents buf)

(** Return the next token and its starting location.  Runs of blank lines
    collapse into a single [NEWLINE]. *)
let rec next t : Token.t * Loc.t =
  skip_blanks t;
  let l = loc t in
  if at_end t then begin
    if t.last_was_newline then (Token.EOF, l)
    else begin
      t.last_was_newline <- true;
      (Token.NEWLINE, l)
    end
  end
  else
    let c = peek_char t in
    if c = '\n' then begin
      newline t;
      if t.last_was_newline then next t
      else begin
        t.last_was_newline <- true;
        (Token.NEWLINE, l)
      end
    end
    else begin
      t.last_was_newline <- false;
      let tok =
        if is_digit c then lex_number t
        else if is_alpha c then lex_ident t
        else if c = '.' then lex_dotted t
        else if c = '\'' || c = '"' then lex_string t
        else begin
          advance t;
          match c with
          | '(' -> Token.LPAREN
          | ')' -> Token.RPAREN
          | ',' -> Token.COMMA
          | '=' -> Token.EQUALS
          | '+' -> Token.PLUS
          | '-' -> Token.MINUS
          | '*' -> if peek_char t = '*' then (advance t; Token.POWER) else Token.STAR
          | '/' -> Token.SLASH
          | '&' -> Loc.error l "continuation '&' must end a line"
          | c -> Loc.error l "unexpected character %C" (lower c)
        end
      in
      (tok, l)
    end

(** Tokenize an entire source string; the result always ends with [EOF]. *)
let tokenize ?(file = "<input>") src : (Token.t * Loc.t) list =
  let t = create ~file src in
  let rec go acc =
    let tok, l = next t in
    match tok with Token.EOF -> List.rev ((tok, l) :: acc) | _ -> go ((tok, l) :: acc)
  in
  go []

(** Like {!tokenize}, but lexical errors are passed to [report] and the
    lexer resynchronizes at the next end of line instead of aborting, so
    one bad literal doesn't hide every later diagnostic.  The malformed
    span contributes no tokens; the statement parser then recovers at
    the NEWLINE boundary. *)
let tokenize_collect ?(file = "<input>") ~report src : (Token.t * Loc.t) list =
  let t = create ~file src in
  let rec go acc =
    match next t with
    | (Token.EOF, _) as tl -> List.rev (tl :: acc)
    | tl -> go (tl :: acc)
    | exception Loc.Error (l, m) ->
      report l m;
      (* every error path has consumed at least one character, so
         skipping to the newline guarantees progress *)
      while (not (at_end t)) && peek_char t <> '\n' do
        advance t
      done;
      go acc
  in
  go []
