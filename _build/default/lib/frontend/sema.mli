(** Semantic analysis: raw AST → resolved program.

    Raises {!Loc.Error} on any semantic violation (unknown names, arity or
    type mismatches, inconsistent common blocks, duplicate units or labels,
    missing or multiple main programs, bad goto targets, ...). *)

(** Resolve a parsed program. *)
val resolve : Ast.program -> Prog.t

(** Recovery-mode resolution: semantic errors accumulate in the given
    diagnostics (code [E-SEMA]); failing statements and units are
    dropped so their siblings still resolve.  [None] only when no
    program shell could be built at all. *)
val resolve_collect :
  Ipcp_support.Diagnostics.t -> Ast.program -> Prog.t option

(** Parse and resolve a source string in one step. *)
val parse_and_resolve : ?file:string -> string -> Prog.t

(** Parse and resolve in recovery mode: [Ok prog] on a clean run,
    [Error diags] carrying every lexical ([E-LEX]), syntax ([E-PARSE])
    and semantic ([E-SEMA]) problem found in one pass. *)
val check :
  ?file:string -> string -> (Prog.t, Ipcp_support.Diagnostics.t) result
