(** Semantic analysis: raw AST → resolved program.

    Raises {!Loc.Error} on any semantic violation (unknown names, arity or
    type mismatches, inconsistent common blocks, duplicate units or labels,
    missing or multiple main programs, bad goto targets, ...). *)

(** Resolve a parsed program. *)
val resolve : Ast.program -> Prog.t

(** Parse and resolve a source string in one step. *)
val parse_and_resolve : ?file:string -> string -> Prog.t
