(** Tokens of the MiniFort language.

    MiniFort is case-insensitive: the lexer lowercases identifiers and
    keywords.  Newlines are significant (they terminate statements), so the
    token stream contains explicit [NEWLINE] tokens; a trailing [&] joins
    physical lines. *)

type t =
  (* literals *)
  | INT of int
  | REAL of float
  | STRING of string
  | TRUE
  | FALSE
  (* identifiers and keywords *)
  | IDENT of string
  | KW_PROGRAM
  | KW_SUBROUTINE
  | KW_FUNCTION
  | KW_INTEGER
  | KW_REAL
  | KW_LOGICAL
  | KW_COMMON
  | KW_PARAMETER
  | KW_DATA
  | KW_CALL
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_ELSEIF
  | KW_ENDIF
  | KW_DO
  | KW_WHILE
  | KW_ENDDO
  | KW_GOTO
  | KW_CONTINUE
  | KW_RETURN
  | KW_STOP
  | KW_END
  | KW_PRINT
  | KW_READ
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POWER (* ** *)
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AND
  | OR
  | NOT
  | NEWLINE
  | EOF

let keyword_table : (string * t) list =
  [
    ("program", KW_PROGRAM);
    ("subroutine", KW_SUBROUTINE);
    ("function", KW_FUNCTION);
    ("integer", KW_INTEGER);
    ("real", KW_REAL);
    ("logical", KW_LOGICAL);
    ("common", KW_COMMON);
    ("parameter", KW_PARAMETER);
    ("data", KW_DATA);
    ("call", KW_CALL);
    ("if", KW_IF);
    ("then", KW_THEN);
    ("else", KW_ELSE);
    ("elseif", KW_ELSEIF);
    ("endif", KW_ENDIF);
    ("do", KW_DO);
    ("while", KW_WHILE);
    ("enddo", KW_ENDDO);
    ("goto", KW_GOTO);
    ("continue", KW_CONTINUE);
    ("return", KW_RETURN);
    ("stop", KW_STOP);
    ("end", KW_END);
    ("print", KW_PRINT);
    ("read", KW_READ);
  ]

let of_keyword s = List.assoc_opt s keyword_table

let pp ppf = function
  | INT n -> Fmt.pf ppf "INT(%d)" n
  | REAL f -> Fmt.pf ppf "REAL(%g)" f
  | STRING s -> Fmt.pf ppf "STRING(%S)" s
  | TRUE -> Fmt.string ppf ".true."
  | FALSE -> Fmt.string ppf ".false."
  | IDENT s -> Fmt.pf ppf "IDENT(%s)" s
  | KW_PROGRAM -> Fmt.string ppf "program"
  | KW_SUBROUTINE -> Fmt.string ppf "subroutine"
  | KW_FUNCTION -> Fmt.string ppf "function"
  | KW_INTEGER -> Fmt.string ppf "integer"
  | KW_REAL -> Fmt.string ppf "real"
  | KW_LOGICAL -> Fmt.string ppf "logical"
  | KW_COMMON -> Fmt.string ppf "common"
  | KW_PARAMETER -> Fmt.string ppf "parameter"
  | KW_DATA -> Fmt.string ppf "data"
  | KW_CALL -> Fmt.string ppf "call"
  | KW_IF -> Fmt.string ppf "if"
  | KW_THEN -> Fmt.string ppf "then"
  | KW_ELSE -> Fmt.string ppf "else"
  | KW_ELSEIF -> Fmt.string ppf "elseif"
  | KW_ENDIF -> Fmt.string ppf "endif"
  | KW_DO -> Fmt.string ppf "do"
  | KW_WHILE -> Fmt.string ppf "while"
  | KW_ENDDO -> Fmt.string ppf "enddo"
  | KW_GOTO -> Fmt.string ppf "goto"
  | KW_CONTINUE -> Fmt.string ppf "continue"
  | KW_RETURN -> Fmt.string ppf "return"
  | KW_STOP -> Fmt.string ppf "stop"
  | KW_END -> Fmt.string ppf "end"
  | KW_PRINT -> Fmt.string ppf "print"
  | KW_READ -> Fmt.string ppf "read"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | EQUALS -> Fmt.string ppf "="
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | POWER -> Fmt.string ppf "**"
  | LT -> Fmt.string ppf ".lt."
  | LE -> Fmt.string ppf ".le."
  | GT -> Fmt.string ppf ".gt."
  | GE -> Fmt.string ppf ".ge."
  | EQ -> Fmt.string ppf ".eq."
  | NE -> Fmt.string ppf ".ne."
  | AND -> Fmt.string ppf ".and."
  | OR -> Fmt.string ppf ".or."
  | NOT -> Fmt.string ppf ".not."
  | NEWLINE -> Fmt.string ppf "<newline>"
  | EOF -> Fmt.string ppf "<eof>"

let to_string t = Fmt.str "%a" pp t

let equal (a : t) (b : t) = a = b
