(** Resolved MiniFort programs, as produced by {!Sema}.

    Every variable reference is resolved to a {!var} carrying its kind
    (formal / local / common global / function result), every [Eapply] from
    the raw AST has been split into array references and function calls, and
    every expression and statement carries a program-wide unique id used to
    map analysis results back to source positions (the substitution pass and
    the SSA construction both rely on these ids). *)

type ty = Ast.ty = Tint | Treal | Tlogical

(** A common-block global.  Identity is [(gblock, gslot)]: FORTRAN common
    storage associates members positionally, so the same slot may be known
    under different local names in different program units. *)
type global = {
  gblock : string;
  gslot : int;  (** 0-based position within the block *)
  gname : string;  (** canonical display name (first declaration wins) *)
  gty : ty;
  gdims : int list;  (** [[]] for scalars *)
}

let global_key g = Printf.sprintf "%s:%d" g.gblock g.gslot

let equal_global a b = a.gblock = b.gblock && a.gslot = b.gslot

type var_kind =
  | Kformal of int  (** position in the formal list, 0-based *)
  | Klocal
  | Kglobal of global
  | Kresult  (** the function-name result variable *)

type var = { vname : string; vty : ty; vdims : int list; vkind : var_kind }

let is_array v = v.vdims <> []

let is_scalar v = v.vdims = []

(** FORTRAN intrinsic functions (the generic names). *)
type intrinsic = Iabs | Imin | Imax | Imod

let intrinsic_name = function
  | Iabs -> "abs"
  | Imin -> "min"
  | Imax -> "max"
  | Imod -> "mod"

let intrinsic_of_name = function
  | "abs" -> Some Iabs
  | "min" -> Some Imin
  | "max" -> Some Imax
  | "mod" -> Some Imod
  | _ -> None

type expr = { eid : int; eloc : Loc.t; ety : ty; edesc : edesc }

and edesc =
  | Cint of int
  | Creal of float
  | Cbool of bool
  | Cstr of string
  | Evar of var
  | Earr of var * expr list
  | Ecall of string * expr list  (** user function call *)
  | Eintr of intrinsic * expr list  (** intrinsic function application *)
  | Eun of Ast.unop * expr
  | Ebin of Ast.binop * expr * expr

type lhs = Lvar of var | Larr of var * expr list

type stmt = { sid : int; sloc : Loc.t; slabel : int option; sdesc : sdesc }

and sdesc =
  | Sassign of lhs * expr
  | Scall of string * expr list
  | Sif of (expr * stmt list) list * stmt list
  | Sdo of var * expr * expr * expr option * stmt list
  | Sdowhile of expr * stmt list
  | Sgoto of int
  | Scontinue
  | Sreturn
  | Sstop
  | Sprint of expr list
  | Sread of lhs list

type proc_kind = Pmain | Psubroutine | Pfunction

(** A resolved [data] initialization: the variable and its load-time
    values (with repeat counts already validated against the shape). *)
type data_init = { di_var : var; di_values : (int * data_const) list }

and data_const = Dc_int of int | Dc_real of float | Dc_bool of bool

type proc = {
  pname : string;
  pkind : proc_kind;
  pformals : var list;
  presult : var option;  (** [Some] iff [pkind = Pfunction] *)
  plocals : var list;
  pglobals : (string * global) list;
      (** commons declared by this unit: local alias name and the global *)
  pdata : data_init list;  (** load-time initializations declared here *)
  pbody : stmt list;
  ploc : Loc.t;
}

type t = { procs : proc list; main : string }

(* ------------------------------------------------------------------ *)
(* Interprocedural parameters: the names CONSTANTS sets range over.     *)

(** An interprocedural "parameter" in the paper's extended sense (§2
    footnote 1): a positional formal or a common-block global. *)
type param = Pformal of int | Pglob of string  (** global key *)

let compare_param (a : param) (b : param) = compare a b

let equal_param a b = compare_param a b = 0

module Param_map = Map.Make (struct
  type t = param

  let compare = compare_param
end)

module Param_set = Set.Make (struct
  type t = param

  let compare = compare_param
end)

(** Human-readable name of a parameter of [proc]. *)
let param_name prog proc = function
  | Pformal i ->
    (match List.nth_opt proc.pformals i with
    | Some v -> v.vname
    | None -> Printf.sprintf "<formal %d>" i)
  | Pglob key ->
    (* Prefer the alias used in [proc] itself, then any canonical name. *)
    let in_proc =
      List.find_map
        (fun (alias, g) -> if global_key g = key then Some alias else None)
        proc.pglobals
    in
    let anywhere () =
      List.find_map
        (fun p ->
          List.find_map
            (fun (_, g) -> if global_key g = key then Some g.gname else None)
            p.pglobals)
        prog.procs
    in
    (match in_proc with
    | Some n -> n
    | None -> ( match anywhere () with Some n -> n | None -> key))

(* ------------------------------------------------------------------ *)
(* Lookups and traversals.                                             *)

let find_proc t name = List.find_opt (fun p -> p.pname = name) t.procs

let find_proc_exn t name =
  match find_proc t name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prog.find_proc_exn: no procedure %s" name)

let is_function t name =
  match find_proc t name with Some p -> p.pkind = Pfunction | None -> false

(** The global (if any) that a variable of this procedure denotes. *)
let global_of_var v = match v.vkind with Kglobal g -> Some g | _ -> None

(** Apply [f] to every statement in a body, recursing into nested blocks. *)
let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.sdesc with
      | Sif (arms, els) ->
        List.iter (fun (_, b) -> iter_stmts f b) arms;
        iter_stmts f els
      | Sdo (_, _, _, _, b) | Sdowhile (_, b) -> iter_stmts f b
      | Sassign _ | Scall _ | Sgoto _ | Scontinue | Sreturn | Sstop | Sprint _
      | Sread _ ->
        ())
    stmts

(** Apply [f] to every expression (including subexpressions) in a body. *)
let iter_exprs f stmts =
  let rec expr e =
    f e;
    match e.edesc with
    | Cint _ | Creal _ | Cbool _ | Cstr _ | Evar _ -> ()
    | Earr (_, idx) -> List.iter expr idx
    | Ecall (_, args) | Eintr (_, args) -> List.iter expr args
    | Eun (_, a) -> expr a
    | Ebin (_, a, b) ->
      expr a;
      expr b
  in
  let lhs = function Lvar _ -> () | Larr (_, idx) -> List.iter expr idx in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Sassign (l, e) ->
        lhs l;
        expr e
      | Scall (_, args) -> List.iter expr args
      | Sif (arms, _) -> List.iter (fun (c, _) -> expr c) arms
      | Sdo (_, lo, hi, step, _) ->
        expr lo;
        expr hi;
        Option.iter expr step
      | Sdowhile (c, _) -> expr c
      | Sprint args -> List.iter expr args
      | Sread ls -> List.iter lhs ls
      | Sgoto _ | Scontinue | Sreturn | Sstop -> ())
    stmts

(** All call sites in a procedure body: statement-level [call]s and function
    calls nested in expressions.  The id is the stmt id for [Scall] and the
    expression id for function calls, so it is unique program-wide. *)
type call_site = { cs_id : int; cs_callee : string; cs_args : expr list }

let call_sites proc =
  let acc = ref [] in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Scall (callee, args) ->
        acc := { cs_id = s.sid; cs_callee = callee; cs_args = args } :: !acc
      | _ -> ())
    proc.pbody;
  iter_exprs
    (fun e ->
      match e.edesc with
      | Ecall (callee, args) ->
        acc := { cs_id = e.eid; cs_callee = callee; cs_args = args } :: !acc
      | _ -> ())
    proc.pbody;
  List.sort (fun a b -> compare a.cs_id b.cs_id) !acc

(** All globals referenced anywhere in the program, keyed canonically. *)
let all_globals t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (_, g) ->
          let key = global_key g in
          if not (Hashtbl.mem tbl key) then begin
            Hashtbl.replace tbl key g;
            order := g :: !order
          end)
        p.pglobals)
    t.procs;
  List.rev !order

let find_global t key =
  List.find_opt (fun g -> global_key g = key) (all_globals t)

(** The load-time [data] value of a scalar integer global, if one is
    declared anywhere in the program.  This is the initial-memory fact the
    solver may assume on entry to the main program. *)
let data_value_of_global t key : int option =
  List.find_map
    (fun (p : proc) ->
      List.find_map
        (fun (d : data_init) ->
          match (d.di_var.vkind, d.di_values) with
          | Kglobal g, [ (1, Dc_int v) ]
            when global_key g = key && is_scalar d.di_var ->
            Some v
          | _ -> None)
        p.pdata)
    t.procs

(** The load-time [data] value of a scalar integer variable of the main
    program (local or global), used to seed jump functions and SCCP there. *)
let data_value_in_main t (v : var) : int option =
  match find_proc t t.main with
  | None -> None
  | Some main ->
    (match v.vkind with
    | Kglobal g -> data_value_of_global t (global_key g)
    | Klocal ->
      List.find_map
        (fun (d : data_init) ->
          match (d.di_var.vkind, d.di_values) with
          | Klocal, [ (1, Dc_int value) ]
            when d.di_var.vname = v.vname && is_scalar d.di_var ->
            Some value
          | _ -> None)
        main.pdata
    | Kformal _ | Kresult -> None)
