(** FORTRAN implicit typing: names beginning with i..n are integers, all
    others are reals.  Shared by {!Sema} (typing undeclared names) and
    {!Pretty} (deciding which declarations must be printed). *)

let ty_of_name name : Ast.ty =
  if name = "" then Ast.Treal
  else match name.[0] with 'i' .. 'n' -> Ast.Tint | _ -> Ast.Treal
