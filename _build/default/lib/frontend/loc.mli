(** Source locations and located diagnostics. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val pp : t Fmt.t
val to_string : t -> string

(** Raised by the lexer, parser and semantic analysis on malformed input. *)
exception Error of t * string

(** [error loc fmt ...] raises {!Error} with a formatted message. *)
val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp_error : (t * string) Fmt.t

(** Convert a located message into a support-layer diagnostic record. *)
val diagnostic :
  ?severity:Ipcp_support.Diagnostics.severity ->
  code:string ->
  t ->
  string ->
  Ipcp_support.Diagnostics.diagnostic

(** Append a located message to a diagnostics accumulator. *)
val report : Ipcp_support.Diagnostics.t -> code:string -> t -> string -> unit
