(** Raw abstract syntax for MiniFort, as produced by the parser.

    Names are unresolved: [Eapply] covers both array references and function
    calls (disambiguated by {!Sema}), and variables are bare strings.  The
    resolved representation lives in {!Prog}. *)

type ty = Tint | Treal | Tlogical

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "integer"
  | Treal -> Fmt.string ppf "real"
  | Tlogical -> Fmt.string ppf "logical"

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

let is_relational = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Pow | And | Or -> false

let is_arith = function
  | Add | Sub | Mul | Div | Pow -> true
  | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> false

let is_logical = function
  | And | Or -> true
  | Add | Sub | Mul | Div | Pow | Lt | Le | Gt | Ge | Eq | Ne -> false

type expr = { eloc : Loc.t; edesc : edesc }

and edesc =
  | Eint of int
  | Ereal of float
  | Ebool of bool
  | Estring of string  (** only valid inside [print] *)
  | Ename of string
  | Eapply of string * expr list  (** array reference or function call *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr

type lhs = { lloc : Loc.t; lname : string; lindex : expr list }

type stmt = { sloc : Loc.t; label : int option; sdesc : sdesc }

and sdesc =
  | Sassign of lhs * expr
  | Scall of string * expr list
  | Sif of (expr * stmt list) list * stmt list
      (** [if/elseif] arms with their guards, then the [else] body *)
  | Sdo of string * expr * expr * expr option * stmt list
      (** [do v = lo, hi [, step]] *)
  | Sdowhile of expr * stmt list
  | Sgoto of int
  | Scontinue
  | Sreturn
  | Sstop
  | Sprint of expr list
  | Sread of lhs list

(** One literal value in a [data] statement, with its repeat count
    ([data a /3*0/] fills three elements with 0). *)
type data_value = { dv_repeat : int; dv_lit : data_lit }

and data_lit = Dlit_int of int | Dlit_real of float | Dlit_bool of bool

type decl =
  | Dtype of ty * (string * int list) list  (** names with array dimensions *)
  | Dcommon of string * string list  (** block name, member names *)
  | Dparameter of (string * expr) list  (** named compile-time constants *)
  | Ddata of (string * data_value list) list
      (** load-time initialization: variable, values *)

type unit_kind = Uprogram | Usubroutine | Ufunction

let pp_unit_kind ppf = function
  | Uprogram -> Fmt.string ppf "program"
  | Usubroutine -> Fmt.string ppf "subroutine"
  | Ufunction -> Fmt.string ppf "function"

type punit = {
  ukind : unit_kind;
  uname : string;
  uformals : string list;
  udecls : decl list;
  ubody : stmt list;
  uloc : Loc.t;
}

type program = punit list

(* ------------------------------------------------------------------ *)
(* Structural equality that ignores source locations — used by the
   parse/print round-trip property tests. *)

let rec equal_expr (a : expr) (b : expr) =
  match (a.edesc, b.edesc) with
  | Eint x, Eint y -> x = y
  | Ereal x, Ereal y -> x = y
  | Ebool x, Ebool y -> x = y
  | Estring x, Estring y -> String.equal x y
  | Ename x, Ename y -> String.equal x y
  | Eapply (f, xs), Eapply (g, ys) ->
    String.equal f g && equal_exprs xs ys
  | Eunop (o, x), Eunop (p, y) -> o = p && equal_expr x y
  | Ebinop (o, x1, x2), Ebinop (p, y1, y2) ->
    o = p && equal_expr x1 y1 && equal_expr x2 y2
  | ( ( Eint _ | Ereal _ | Ebool _ | Estring _ | Ename _ | Eapply _ | Eunop _
      | Ebinop _ ),
      _ ) ->
    false

and equal_exprs xs ys =
  List.length xs = List.length ys && List.for_all2 equal_expr xs ys

let equal_lhs (a : lhs) (b : lhs) =
  String.equal a.lname b.lname && equal_exprs a.lindex b.lindex

let rec equal_stmt (a : stmt) (b : stmt) =
  a.label = b.label
  &&
  match (a.sdesc, b.sdesc) with
  | Sassign (l1, e1), Sassign (l2, e2) -> equal_lhs l1 l2 && equal_expr e1 e2
  | Scall (f, xs), Scall (g, ys) -> String.equal f g && equal_exprs xs ys
  | Sif (arms1, else1), Sif (arms2, else2) ->
    List.length arms1 = List.length arms2
    && List.for_all2
         (fun (c1, b1) (c2, b2) -> equal_expr c1 c2 && equal_stmts b1 b2)
         arms1 arms2
    && equal_stmts else1 else2
  | Sdo (v1, l1, h1, s1, b1), Sdo (v2, l2, h2, s2, b2) ->
    String.equal v1 v2 && equal_expr l1 l2 && equal_expr h1 h2
    && Option.equal equal_expr s1 s2
    && equal_stmts b1 b2
  | Sdowhile (c1, b1), Sdowhile (c2, b2) -> equal_expr c1 c2 && equal_stmts b1 b2
  | Sgoto x, Sgoto y -> x = y
  | Scontinue, Scontinue | Sreturn, Sreturn | Sstop, Sstop -> true
  | Sprint xs, Sprint ys -> equal_exprs xs ys
  | Sread xs, Sread ys ->
    List.length xs = List.length ys && List.for_all2 equal_lhs xs ys
  | ( ( Sassign _ | Scall _ | Sif _ | Sdo _ | Sdowhile _ | Sgoto _ | Scontinue
      | Sreturn | Sstop | Sprint _ | Sread _ ),
      _ ) ->
    false

and equal_stmts xs ys =
  List.length xs = List.length ys && List.for_all2 equal_stmt xs ys

let equal_decl (a : decl) (b : decl) =
  match (a, b) with
  | Dtype (t1, items1), Dtype (t2, items2) ->
    t1 = t2
    && List.length items1 = List.length items2
    && List.for_all2
         (fun (n1, d1) (n2, d2) -> String.equal n1 n2 && d1 = d2)
         items1 items2
  | Dcommon (b1, ms1), Dcommon (b2, ms2) ->
    String.equal b1 b2
    && List.length ms1 = List.length ms2
    && List.for_all2 String.equal ms1 ms2
  | Dparameter ps1, Dparameter ps2 ->
    List.length ps1 = List.length ps2
    && List.for_all2
         (fun (n1, e1) (n2, e2) -> String.equal n1 n2 && equal_expr e1 e2)
         ps1 ps2
  | Ddata items1, Ddata items2 ->
    List.length items1 = List.length items2
    && List.for_all2
         (fun (n1, vs1) (n2, vs2) -> String.equal n1 n2 && vs1 = vs2)
         items1 items2
  | (Dtype _ | Dcommon _ | Dparameter _ | Ddata _), _ -> false

let equal_punit (a : punit) (b : punit) =
  a.ukind = b.ukind
  && String.equal a.uname b.uname
  && List.length a.uformals = List.length b.uformals
  && List.for_all2 String.equal a.uformals b.uformals
  && List.length a.udecls = List.length b.udecls
  && List.for_all2 equal_decl a.udecls b.udecls
  && equal_stmts a.ubody b.ubody

let equal_program (a : program) (b : program) =
  List.length a = List.length b && List.for_all2 equal_punit a b
