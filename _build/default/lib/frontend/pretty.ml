(** Printing MiniFort back to parseable source.

    Two printers:
    - {!pp_ast_program} prints the raw parser AST; [parse (print ast)] is
      structurally equal to [ast] (the round-trip property test).
    - {!pp_program} prints a resolved {!Prog.t}; used to emit the transformed
      source after constant substitution. *)

open Ast

let op_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Lt -> ".lt."
  | Le -> ".le."
  | Gt -> ".gt."
  | Ge -> ".ge."
  | Eq -> ".eq."
  | Ne -> ".ne."
  | And -> ".and."
  | Or -> ".or."

(* Precedence: higher binds tighter. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6
  | Pow -> 8

let prec_neg = 7
let prec_not = 3
let prec_atom = 9

(* Print a float so that it re-lexes as a REAL token (always with a point). *)
let real_string f =
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
     (* nan/inf *)
  then s
  else s ^ ".0"

(* ------------------------------------------------------------------ *)
(* Raw AST printer.                                                     *)

let rec ast_expr_prec ppf (p, e) =
  let atom fmt = Fmt.pf ppf fmt in
  let self = prec_of_ast e in
  let wrap body = if self < p then Fmt.pf ppf "(%t)" body else body ppf in
  match e.edesc with
  | Eint n ->
    if n < 0 then wrap (fun ppf -> Fmt.pf ppf "-%d" (-n)) else atom "%d" n
  | Ereal f -> atom "%s" (real_string f)
  | Ebool true -> atom ".true."
  | Ebool false -> atom ".false."
  | Estring s -> atom "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Ename n -> atom "%s" n
  | Eapply (f, args) ->
    Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") ast_expr_top) args
  | Eunop (Neg, a) ->
    wrap (fun ppf -> Fmt.pf ppf "-%a" ast_expr_prec (prec_neg + 1, a))
  | Eunop (Not, a) ->
    wrap (fun ppf -> Fmt.pf ppf ".not. %a" ast_expr_prec (prec_not, a))
  | Ebinop (op, a, b) ->
    let pr = prec op in
    let left = if op = Pow then pr + 1 else pr in
    let right =
      match op with
      | Sub | Div -> pr + 1 (* left-assoc, non-commutative *)
      | Pow -> pr - 1 (* right-assoc; also admits unary minus on the right *)
      | Lt | Le | Gt | Ge | Eq | Ne -> pr + 1 (* non-assoc *)
      | Add | Mul | And | Or -> pr
    in
    wrap (fun ppf ->
        Fmt.pf ppf "%a %s %a" ast_expr_prec (left, a) (op_string op)
          ast_expr_prec (right, b))

and prec_of_ast (e : Ast.expr) =
  match e.edesc with
  | Eint n when n < 0 -> prec_neg
  | Eint _ | Ereal _ | Ebool _ | Estring _ | Ename _ | Eapply _ -> prec_atom
  | Eunop (Neg, _) -> prec_neg
  | Eunop (Not, _) -> prec_not
  | Ebinop (op, _, _) -> prec op

and ast_expr_top ppf e = ast_expr_prec ppf (0, e)

let pp_ast_expr = ast_expr_top

let ast_lhs ppf (l : Ast.lhs) =
  match l.lindex with
  | [] -> Fmt.string ppf l.lname
  | idx -> Fmt.pf ppf "%s(%a)" l.lname (Fmt.list ~sep:(Fmt.any ", ") ast_expr_top) idx

let indent ppf n = Fmt.string ppf (String.make n ' ')

let label_prefix ppf = function
  | Some n -> Fmt.pf ppf "%d " n
  | None -> ()

let rec ast_stmt ind ppf (s : Ast.stmt) =
  indent ppf ind;
  label_prefix ppf s.label;
  match s.sdesc with
  | Sassign (l, e) -> Fmt.pf ppf "%a = %a@." ast_lhs l ast_expr_top e
  | Scall (f, []) -> Fmt.pf ppf "call %s@." f
  | Scall (f, args) ->
    Fmt.pf ppf "call %s(%a)@." f (Fmt.list ~sep:(Fmt.any ", ") ast_expr_top) args
  | Sif (arms, els) ->
    (match arms with
    | [] -> assert false
    | (c0, b0) :: rest ->
      Fmt.pf ppf "if (%a) then@." ast_expr_top c0;
      List.iter (ast_stmt (ind + 2) ppf) b0;
      List.iter
        (fun (c, b) ->
          Fmt.pf ppf "%aelse if (%a) then@." indent ind ast_expr_top c;
          List.iter (ast_stmt (ind + 2) ppf) b)
        rest;
      if els <> [] then begin
        Fmt.pf ppf "%aelse@." indent ind;
        List.iter (ast_stmt (ind + 2) ppf) els
      end;
      Fmt.pf ppf "%aend if@." indent ind)
  | Sdo (v, lo, hi, step, body) ->
    (match step with
    | None -> Fmt.pf ppf "do %s = %a, %a@." v ast_expr_top lo ast_expr_top hi
    | Some st ->
      Fmt.pf ppf "do %s = %a, %a, %a@." v ast_expr_top lo ast_expr_top hi
        ast_expr_top st);
    List.iter (ast_stmt (ind + 2) ppf) body;
    Fmt.pf ppf "%aend do@." indent ind
  | Sdowhile (c, body) ->
    Fmt.pf ppf "do while (%a)@." ast_expr_top c;
    List.iter (ast_stmt (ind + 2) ppf) body;
    Fmt.pf ppf "%aend do@." indent ind
  | Sgoto n -> Fmt.pf ppf "goto %d@." n
  | Scontinue -> Fmt.pf ppf "continue@."
  | Sreturn -> Fmt.pf ppf "return@."
  | Sstop -> Fmt.pf ppf "stop@."
  | Sprint [] -> Fmt.pf ppf "print *@."
  | Sprint args ->
    Fmt.pf ppf "print *, %a@." (Fmt.list ~sep:(Fmt.any ", ") ast_expr_top) args
  | Sread ls -> Fmt.pf ppf "read *, %a@." (Fmt.list ~sep:(Fmt.any ", ") ast_lhs) ls

let ast_decl ppf = function
  | Dtype (ty, items) ->
    let item ppf (name, dims) =
      match dims with
      | [] -> Fmt.string ppf name
      | ds -> Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:(Fmt.any ", ") Fmt.int) ds
    in
    Fmt.pf ppf "  %a %a@." Ast.pp_ty ty (Fmt.list ~sep:(Fmt.any ", ") item) items
  | Dcommon (block, members) ->
    Fmt.pf ppf "  common /%s/ %a@." block
      (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
      members
  | Dparameter ps ->
    let pair ppf (n, e) = Fmt.pf ppf "%s = %a" n ast_expr_top e in
    Fmt.pf ppf "  parameter (%a)@." (Fmt.list ~sep:(Fmt.any ", ") pair) ps
  | Ddata items ->
    let value ppf (dv : Ast.data_value) =
      if dv.dv_repeat <> 1 then Fmt.pf ppf "%d*" dv.dv_repeat;
      match dv.dv_lit with
      | Ast.Dlit_int n -> Fmt.int ppf n
      | Ast.Dlit_real f -> Fmt.string ppf (real_string f)
      | Ast.Dlit_bool true -> Fmt.string ppf ".true."
      | Ast.Dlit_bool false -> Fmt.string ppf ".false."
    in
    let item ppf (name, vs) =
      Fmt.pf ppf "%s /%a/" name (Fmt.list ~sep:(Fmt.any ", ") value) vs
    in
    Fmt.pf ppf "  data %a@." (Fmt.list ~sep:(Fmt.any ", ") item) items

let pp_ast_unit ppf (u : Ast.punit) =
  (match u.ukind with
  | Uprogram -> Fmt.pf ppf "program %s@." u.uname
  | Usubroutine ->
    if u.uformals = [] then Fmt.pf ppf "subroutine %s@." u.uname
    else
      Fmt.pf ppf "subroutine %s(%a)@." u.uname
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        u.uformals
  | Ufunction ->
    Fmt.pf ppf "function %s(%a)@." u.uname
      (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
      u.uformals);
  List.iter (ast_decl ppf) u.udecls;
  List.iter (ast_stmt 2 ppf) u.ubody;
  Fmt.pf ppf "end@."

let pp_ast_program ppf (units : Ast.program) =
  List.iteri
    (fun i u ->
      if i > 0 then Fmt.pf ppf "@.";
      pp_ast_unit ppf u)
    units

let ast_program_to_string units = Fmt.str "%a" pp_ast_program units

(* ------------------------------------------------------------------ *)
(* Resolved program printer.                                            *)

let rec prog_expr_prec ppf (p, (e : Prog.expr)) =
  let self = prec_of_prog e in
  let wrap body = if self < p then Fmt.pf ppf "(%t)" body else body ppf in
  match e.edesc with
  | Cint n -> if n < 0 then wrap (fun ppf -> Fmt.pf ppf "-%d" (-n)) else Fmt.int ppf n
  | Creal f -> Fmt.string ppf (real_string f)
  | Cbool true -> Fmt.string ppf ".true."
  | Cbool false -> Fmt.string ppf ".false."
  | Cstr s -> Fmt.pf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Evar v -> Fmt.string ppf v.vname
  | Earr (v, idx) ->
    Fmt.pf ppf "%s(%a)" v.vname (Fmt.list ~sep:(Fmt.any ", ") prog_expr_top) idx
  | Ecall (f, args) ->
    Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") prog_expr_top) args
  | Eintr (intr, args) ->
    Fmt.pf ppf "%s(%a)" (Prog.intrinsic_name intr)
      (Fmt.list ~sep:(Fmt.any ", ") prog_expr_top)
      args
  | Eun (Neg, a) -> wrap (fun ppf -> Fmt.pf ppf "-%a" prog_expr_prec (prec_neg + 1, a))
  | Eun (Not, a) -> wrap (fun ppf -> Fmt.pf ppf ".not. %a" prog_expr_prec (prec_not, a))
  | Ebin (op, a, b) ->
    let pr = prec op in
    let left = if op = Pow then pr + 1 else pr in
    let right =
      match op with
      | Sub | Div -> pr + 1
      | Pow -> pr - 1
      | Lt | Le | Gt | Ge | Eq | Ne -> pr + 1
      | Add | Mul | And | Or -> pr
    in
    wrap (fun ppf ->
        Fmt.pf ppf "%a %s %a" prog_expr_prec (left, a) (op_string op)
          prog_expr_prec (right, b))

and prec_of_prog (e : Prog.expr) =
  match e.edesc with
  | Cint n when n < 0 -> prec_neg
  | Cint _ | Creal _ | Cbool _ | Cstr _ | Evar _ | Earr _ | Ecall _ | Eintr _
    ->
    prec_atom
  | Eun (Neg, _) -> prec_neg
  | Eun (Not, _) -> prec_not
  | Ebin (op, _, _) -> prec op

and prog_expr_top ppf e = prog_expr_prec ppf (0, e)

let pp_expr = prog_expr_top

let prog_lhs ppf = function
  | Prog.Lvar v -> Fmt.string ppf v.Prog.vname
  | Prog.Larr (v, idx) ->
    Fmt.pf ppf "%s(%a)" v.Prog.vname (Fmt.list ~sep:(Fmt.any ", ") prog_expr_top) idx

let rec prog_stmt ind ppf (s : Prog.stmt) =
  indent ppf ind;
  label_prefix ppf s.slabel;
  match s.sdesc with
  | Sassign (l, e) -> Fmt.pf ppf "%a = %a@." prog_lhs l prog_expr_top e
  | Scall (f, []) -> Fmt.pf ppf "call %s@." f
  | Scall (f, args) ->
    Fmt.pf ppf "call %s(%a)@." f (Fmt.list ~sep:(Fmt.any ", ") prog_expr_top) args
  | Sif (arms, els) ->
    (match arms with
    | [] ->
      (* an if with no arms can only arise from DCE; print its else inline *)
      Fmt.pf ppf "continue@.";
      List.iter (prog_stmt ind ppf) els
    | (c0, b0) :: rest ->
      Fmt.pf ppf "if (%a) then@." prog_expr_top c0;
      List.iter (prog_stmt (ind + 2) ppf) b0;
      List.iter
        (fun (c, b) ->
          Fmt.pf ppf "%aelse if (%a) then@." indent ind prog_expr_top c;
          List.iter (prog_stmt (ind + 2) ppf) b)
        rest;
      if els <> [] then begin
        Fmt.pf ppf "%aelse@." indent ind;
        List.iter (prog_stmt (ind + 2) ppf) els
      end;
      Fmt.pf ppf "%aend if@." indent ind)
  | Sdo (v, lo, hi, step, body) ->
    (match step with
    | None ->
      Fmt.pf ppf "do %s = %a, %a@." v.vname prog_expr_top lo prog_expr_top hi
    | Some st ->
      Fmt.pf ppf "do %s = %a, %a, %a@." v.vname prog_expr_top lo prog_expr_top hi
        prog_expr_top st);
    List.iter (prog_stmt (ind + 2) ppf) body;
    Fmt.pf ppf "%aend do@." indent ind
  | Sdowhile (c, body) ->
    Fmt.pf ppf "do while (%a)@." prog_expr_top c;
    List.iter (prog_stmt (ind + 2) ppf) body;
    Fmt.pf ppf "%aend do@." indent ind
  | Sgoto n -> Fmt.pf ppf "goto %d@." n
  | Scontinue -> Fmt.pf ppf "continue@."
  | Sreturn -> Fmt.pf ppf "return@."
  | Sstop -> Fmt.pf ppf "stop@."
  | Sprint [] -> Fmt.pf ppf "print *@."
  | Sprint args ->
    Fmt.pf ppf "print *, %a@." (Fmt.list ~sep:(Fmt.any ", ") prog_expr_top) args
  | Sread ls -> Fmt.pf ppf "read *, %a@." (Fmt.list ~sep:(Fmt.any ", ") prog_lhs) ls

(* Declarations reconstructed from the resolved symbol information. *)
let prog_decls ppf (p : Prog.proc) =
  let needs_decl (v : Prog.var) =
    v.vdims <> [] || v.vty <> Implicit.ty_of_name v.vname
  in
  let decl_of ppf (v : Prog.var) =
    match v.vdims with
    | [] -> Fmt.pf ppf "  %a %s@." Ast.pp_ty v.vty v.vname
    | ds ->
      Fmt.pf ppf "  %a %s(%a)@." Ast.pp_ty v.vty v.vname
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.int)
        ds
  in
  let declare_if_needed v = if needs_decl v then decl_of ppf v in
  List.iter declare_if_needed p.pformals;
  Option.iter declare_if_needed p.presult;
  (* common members: group consecutive same-block entries *)
  let rec group = function
    | [] -> []
    | (alias, (g : Prog.global)) :: rest ->
      let block = g.gblock in
      let same, others =
        let rec split acc = function
          | (a, (g' : Prog.global)) :: tl when g'.gblock = block ->
            split ((a, g') :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        split [ (alias, g) ] rest
      in
      (block, same) :: group others
  in
  List.iter
    (fun (block, members) ->
      Fmt.pf ppf "  common /%s/ %a@." block
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, _) -> Fmt.string ppf a))
        members;
      List.iter
        (fun (alias, (g : Prog.global)) ->
          declare_if_needed
            { Prog.vname = alias; vty = g.gty; vdims = g.gdims; vkind = Kglobal g })
        members)
    (group p.pglobals);
  List.iter declare_if_needed p.plocals;
  (* data statements *)
  let data_value ppf (repeat, (c : Prog.data_const)) =
    if repeat <> 1 then Fmt.pf ppf "%d*" repeat;
    match c with
    | Prog.Dc_int n -> Fmt.int ppf n
    | Prog.Dc_real f -> Fmt.string ppf (real_string f)
    | Prog.Dc_bool true -> Fmt.string ppf ".true."
    | Prog.Dc_bool false -> Fmt.string ppf ".false."
  in
  List.iter
    (fun (d : Prog.data_init) ->
      Fmt.pf ppf "  data %s /%a/@." d.di_var.vname
        (Fmt.list ~sep:(Fmt.any ", ") data_value)
        d.di_values)
    p.pdata

let pp_proc ppf (p : Prog.proc) =
  (match p.pkind with
  | Pmain -> Fmt.pf ppf "program %s@." p.pname
  | Psubroutine ->
    if p.pformals = [] then Fmt.pf ppf "subroutine %s@." p.pname
    else
      Fmt.pf ppf "subroutine %s(%a)@." p.pname
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v : Prog.var) -> Fmt.string ppf v.vname))
        p.pformals
  | Pfunction ->
    Fmt.pf ppf "function %s(%a)@." p.pname
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v : Prog.var) -> Fmt.string ppf v.vname))
      p.pformals);
  prog_decls ppf p;
  List.iter (prog_stmt 2 ppf) p.pbody;
  Fmt.pf ppf "end@."

let pp_program ppf (t : Prog.t) =
  List.iteri
    (fun i p ->
      if i > 0 then Fmt.pf ppf "@.";
      pp_proc ppf p)
    t.procs

let program_to_string t = Fmt.str "%a" pp_program t
