lib/telemetry/json.mli: Format
