lib/telemetry/telemetry.ml: Domain Fmt Fun Hashtbl Int64 Ipcp_support Json List Monotonic_clock Option Stats String
