lib/telemetry/telemetry.mli: Format Json
