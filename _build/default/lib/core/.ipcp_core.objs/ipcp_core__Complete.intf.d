lib/core/complete.mli: Config Driver Ipcp_frontend Prog
