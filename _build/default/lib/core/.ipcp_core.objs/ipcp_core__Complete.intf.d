lib/core/complete.mli: Config Driver Ipcp_frontend Ipcp_support Prog
