lib/core/config.mli: Fmt Ipcp_support Jump_function
