lib/core/config.mli: Fmt Jump_function
