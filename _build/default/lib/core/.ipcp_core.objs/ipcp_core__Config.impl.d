lib/core/config.ml: Fmt Ipcp_support Jump_function
