lib/core/config.ml: Fmt Jump_function
