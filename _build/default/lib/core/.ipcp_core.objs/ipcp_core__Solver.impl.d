lib/core/solver.ml: Array Callgraph Const_lattice Fmt Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_support Ipcp_telemetry Jump_function List Option Prog Symbolic Telemetry
