lib/core/driver.mli: Callgraph Config Fmt Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_support Jump_function Modref Prog Sccp Solver Ssa_value
