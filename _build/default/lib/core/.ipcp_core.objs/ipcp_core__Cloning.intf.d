lib/core/cloning.mli: Config Driver Ipcp_frontend Prog
