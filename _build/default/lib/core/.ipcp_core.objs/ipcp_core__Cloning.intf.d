lib/core/cloning.mli: Config Ipcp_frontend Prog
