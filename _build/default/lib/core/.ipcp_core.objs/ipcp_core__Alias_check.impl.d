lib/core/alias_check.ml: Callgraph Fmt Ipcp_frontend List Modref Prog
