lib/core/substitute.mli: Config Driver Ipcp_analysis Ipcp_frontend Prog
