lib/core/solver.mli: Callgraph Const_lattice Fmt Hashtbl Ipcp_analysis Ipcp_frontend Jump_function Prog Symbolic
