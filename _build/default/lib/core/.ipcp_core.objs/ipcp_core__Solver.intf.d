lib/core/solver.mli: Callgraph Const_lattice Fmt Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_support Jump_function Prog Symbolic
