lib/core/jump_function.ml: Array Cfg Dom Fmt Hashtbl Int Ipcp_analysis Ipcp_frontend Ipcp_ir Ipcp_telemetry List Lower Map Modref Option Prog Ssa Ssa_value String Symbolic
