lib/core/substitute.ml: Config Driver Hashtbl Ipcp_analysis Ipcp_engine Ipcp_frontend List Modref Option Prog
