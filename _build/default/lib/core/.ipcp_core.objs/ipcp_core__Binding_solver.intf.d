lib/core/binding_solver.mli: Callgraph Jump_function Solver
