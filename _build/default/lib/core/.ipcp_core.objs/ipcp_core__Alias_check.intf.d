lib/core/alias_check.mli: Fmt Ipcp_frontend Prog
