lib/core/jump_function.mli: Fmt Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_ir Map Modref Prog Ssa_value Symbolic
