lib/core/modref.ml: Callgraph Fmt Hashtbl Int Ipcp_frontend Ipcp_support List Option Prog Set String
