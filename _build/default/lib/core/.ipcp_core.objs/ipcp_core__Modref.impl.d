lib/core/modref.ml: Callgraph Fmt Hashtbl Int Ipcp_frontend Ipcp_support Ipcp_telemetry List Option Prog Set String
