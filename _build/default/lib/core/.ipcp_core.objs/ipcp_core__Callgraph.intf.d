lib/core/callgraph.mli: Fmt Hashtbl Ipcp_frontend Prog
