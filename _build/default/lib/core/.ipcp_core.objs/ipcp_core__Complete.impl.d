lib/core/complete.ml: Config Driver Ipcp_analysis Ipcp_frontend List Prog Substitute
