lib/core/complete.ml: Config Driver Ipcp_analysis Ipcp_frontend Ipcp_support Ipcp_telemetry List Prog Substitute
