lib/core/callgraph.ml: Fmt Hashtbl Ipcp_frontend List Option Prog
