lib/core/cloning.ml: Array Config Const_lattice Driver Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_ir Jump_function List Option Printf Prog Solver
