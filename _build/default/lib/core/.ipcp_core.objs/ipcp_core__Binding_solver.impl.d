lib/core/binding_solver.ml: Array Callgraph Const_lattice Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_support Jump_function List Option Prog Solver Symbolic
