lib/core/modref.mli: Callgraph Fmt Set
