lib/core/driver.ml: Callgraph Config Const_lattice Fmt Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_support Ipcp_telemetry Jump_function Lazy List Modref Prog Sccp Solver Ssa_value
