(** The four-stage analyzer pipeline of the paper's §4.1: return jump
    functions (bottom-up) → forward jump functions (top-down) →
    interprocedural propagation → results. *)

open Ipcp_frontend
open Ipcp_analysis

type t = {
  config : Config.t;
  prog : Prog.t;
  cg : Callgraph.t;
  modref : Modref.t;
  ret_jfs : (string, Jump_function.ret_jf) Hashtbl.t;
  irs : (string, Jump_function.proc_ir) Hashtbl.t;
      (** per-procedure IR (CFG/SSA/symbolic values), reused downstream *)
  site_jfs : Jump_function.site_jf list;
  solution : Solver.result;
}

(** Run the full pipeline on a resolved program. *)
val analyze : Config.t -> Prog.t -> t

(** CONSTANTS(p) for every procedure, in program order. *)
val constants : t -> (string * (Prog.param * int) list) list

(** Total number of (procedure, parameter) constant facts. *)
val constants_count : t -> int

(** Entry-value environment of a procedure, as consumed by SCCP. *)
val entry_env : t -> Prog.proc -> Prog.var -> int option

(** The return-jump-function oracle of this analysis, if enabled. *)
val oracle : t -> Ssa_value.oracle option

(** SCCP for one procedure, seeded with the discovered entry facts. *)
val sccp_for : t -> string -> Sccp.result

val pp_constants : t Fmt.t
