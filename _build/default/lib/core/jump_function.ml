(** Jump functions (paper §3).

    A *forward jump function* J_y^s approximates the value of actual
    parameter [y] at call site [s] as a function of the enclosing
    procedure's entry values.  Four implementations are reproduced, in
    increasing precision (each propagates a superset of the previous one's
    constants):

    - {b Literal}: [c] when the actual is a literal constant at the call
      site, ⊥ otherwise.  Built from a textual scan; misses globals.
    - {b Intraprocedural constant}: [gcp(y,s)] — the constant produced by
      value numbering coupled with MOD information; still only propagates
      along single call-graph edges.
    - {b Pass-through parameter}: additionally recognizes [y = z] where [z]
      is an unmodified incoming parameter, enabling propagation along paths
      of length > 1.
    - {b Polynomial parameter}: the full symbolic expression over entry
      values, when one exists.

    A *return jump function* R_x^p approximates the value of [x] after a
    call to [p] — for the function result, each modified by-reference
    formal, and each modified global — as a polynomial over [p]'s entry
    values.  Return jump functions are built in one bottom-up pass over the
    call graph and are evaluated only over constant actuals (paper §3.2). *)

open Ipcp_frontend
open Ipcp_ir
open Ipcp_analysis

type kind = Literal | Intraconst | Passthrough | Polynomial

let kind_name = function
  | Literal -> "literal"
  | Intraconst -> "intraconst"
  | Passthrough -> "passthrough"
  | Polynomial -> "polynomial"

let all_kinds = [ Literal; Intraconst; Passthrough; Polynomial ]

module Int_map = Map.Make (Int)
module Str_map = Map.Make (String)

(** Return jump functions of one procedure. *)
type ret_jf = {
  rj_result : Symbolic.t;  (** function result; [Unknown] for subroutines *)
  rj_formals : Symbolic.t Int_map.t;  (** for formals in MOD *)
  rj_globals : Symbolic.t Str_map.t;  (** for globals in MOD *)
}

let empty_ret_jf =
  {
    rj_result = Symbolic.unknown;
    rj_formals = Int_map.empty;
    rj_globals = Str_map.empty;
  }

(** Forward jump functions of one call site. *)
type site_jf = {
  sf_caller : string;
  sf_callee : string;
  sf_site : int;  (** program-wide call-site id *)
  sf_formals : Symbolic.t array;  (** per formal position of the callee *)
  sf_globals : (string * Symbolic.t) list;  (** per global key *)
}

(** Per-procedure IR bundle: CFG, dominators, SSA and symbolic values. *)
type proc_ir = {
  pi_proc : Prog.proc;
  pi_cfg : Cfg.t;
  pi_dom : Dom.t;
  pi_ssa : Ssa.t;
  pi_sv : Ssa_value.t;
  pi_global_vars : (string * Prog.var) list;  (** global key → var in this proc *)
}

(* ------------------------------------------------------------------ *)
(* Per-procedure variables standing for globals.                        *)

(* Every common global of the program gets a variable in every procedure:
   the declared alias when the unit declares it, or a synthetic name (with
   '@', unlexable) otherwise — undeclared globals still flow through calls
   unchanged and must be representable in SSA. *)
let global_vars_for (prog : Prog.t) (proc : Prog.proc) : (string * Prog.var) list =
  List.map
    (fun (g : Prog.global) ->
      let key = Prog.global_key g in
      let declared =
        List.find_opt (fun (_, g') -> Prog.equal_global g g') proc.pglobals
      in
      let var =
        match declared with
        | Some (alias, g') ->
          { Prog.vname = alias; vty = g'.gty; vdims = g'.gdims; vkind = Kglobal g' }
        | None ->
          { Prog.vname = "@g:" ^ key; vty = g.gty; vdims = g.gdims; vkind = Kglobal g }
      in
      (key, var))
    (Prog.all_globals prog)

(* ------------------------------------------------------------------ *)
(* IR construction.                                                     *)

(** Build the IR bundle for one procedure.

    [modref] drives the call-kill sets: a call (re)defines the scalar
    by-reference actuals bound to modified formals and the modified scalar
    globals.  [oracle] plugs return-jump-function evaluation into the
    symbolic interpretation of call definitions. *)
let rec build_ir ?oracle ~(modref : Modref.t) (prog : Prog.t)
    (proc : Prog.proc) : proc_ir =
  Ipcp_telemetry.Telemetry.span ("build_ir:" ^ proc.pname) (fun () ->
      Ipcp_telemetry.Telemetry.incr "jf.build_ir";
      build_ir_timed ?oracle ~modref prog proc)

and build_ir_timed ?oracle ~(modref : Modref.t) (prog : Prog.t)
    (proc : Prog.proc) : proc_ir =
  (* data-initialized storage holds its load-time value on entry to the
     main program (and nothing has run before main) *)
  let entry_const (v : Prog.var) =
    if proc.pkind = Prog.Pmain && Prog.is_scalar v && v.vty = Prog.Tint then
      Prog.data_value_in_main prog v
    else None
  in
  let cfg = Lower.lower_proc ~next_expr_id:(Lower.expr_id_ceiling prog) proc in
  let dom = Dom.compute cfg in
  let global_vars = global_vars_for prog proc in
  let scalar_globals =
    List.filter (fun (_, (v : Prog.var)) -> Prog.is_scalar v) global_vars
  in
  let call_defs (c : Cfg.call) : Prog.var list =
    let by_ref =
      List.mapi (fun pos (a : Prog.expr) -> (pos, a)) c.c_args
      |> List.filter_map (fun (pos, (a : Prog.expr)) ->
             match a.edesc with
             | Prog.Evar v
               when Prog.is_scalar v && Modref.modifies_formal modref c.c_callee pos
               ->
               Some v
             | _ -> None)
    in
    let globals =
      List.filter_map
        (fun (key, v) ->
          if Modref.modifies_global modref c.c_callee key then Some v else None)
        scalar_globals
    in
    by_ref @ globals
  in
  let call_uses (_ : Cfg.call) : Prog.var list = List.map snd scalar_globals in
  let ssa = Ssa.build ~call_defs ~call_uses proc cfg dom in
  let sv = Ssa_value.create ?oracle ~entry_const ssa in
  { pi_proc = proc; pi_cfg = cfg; pi_dom = dom; pi_ssa = ssa; pi_sv = sv; pi_global_vars = global_vars }

(** An oracle that evaluates return jump functions from [table].
    Only constant entry values participate (paper §3.2). *)
let oracle_of_table (table : (string, ret_jf) Hashtbl.t) : Ssa_value.oracle =
 fun call target lookup ->
  Ipcp_telemetry.Telemetry.incr "jf.ret_oracle.evals";
  match Hashtbl.find_opt table call.Cfg.c_callee with
  | None -> None
  | Some rj ->
    let sym =
      match target with
      | Ssa_value.Tresult -> rj.rj_result
      | Ssa_value.Tformal i ->
        Int_map.find_opt i rj.rj_formals |> Option.value ~default:Symbolic.unknown
      | Ssa_value.Tglobal k ->
        Str_map.find_opt k rj.rj_globals |> Option.value ~default:Symbolic.unknown
    in
    Symbolic.eval ~env:lookup sym

(* ------------------------------------------------------------------ *)
(* Return jump function construction (bottom-up pass).                  *)

(* Meet of symbolic values across all procedure exits. *)
let meet_exit_syms (pi : proc_ir) name : Symbolic.t =
  match Ssa.exits pi.pi_ssa with
  | [] -> Symbolic.unknown (* no reachable exit *)
  | exits ->
    let syms =
      List.map (fun (b, _) -> Ssa_value.sym_at_exit pi.pi_sv ~block:b name) exits
    in
    (match syms with
    | [] -> Symbolic.unknown
    | s0 :: rest ->
      if Symbolic.is_unknown s0 then Symbolic.unknown
      else if List.for_all (Symbolic.equal s0) rest then s0
      else Symbolic.unknown)

(** Build the return jump functions of one procedure from its IR.

    Without MOD information ([Modref.worst_case]) there is no "set of
    formals/globals p may modify" to attach return jump functions to, and
    the paper's no-MOD configuration loses values across every call site;
    only the function-result jump function survives in that mode. *)
let build_ret_jf ~(modref : Modref.t) (pi : proc_ir) : ret_jf =
  Ipcp_telemetry.Telemetry.incr "jf.ret_jf.built";
  let proc = pi.pi_proc in
  let result =
    match proc.presult with
    | Some rv when rv.vty = Prog.Tint -> meet_exit_syms pi rv.vname
    | Some _ | None -> Symbolic.unknown
  in
  if Modref.is_worst_case modref then { empty_ret_jf with rj_result = result }
  else
  let formals =
    List.fold_left
      (fun acc (v : Prog.var) ->
        match v.vkind with
        | Prog.Kformal i
          when Prog.is_scalar v && v.vty = Prog.Tint
               && Modref.modifies_formal modref proc.pname i ->
          Int_map.add i (meet_exit_syms pi v.vname) acc
        | _ -> acc)
      Int_map.empty proc.pformals
  in
  let globals =
    List.fold_left
      (fun acc (key, (v : Prog.var)) ->
        if
          Prog.is_scalar v && v.vty = Prog.Tint
          && Modref.modifies_global modref proc.pname key
        then Str_map.add key (meet_exit_syms pi v.vname) acc
        else acc)
      Str_map.empty pi.pi_global_vars
  in
  { rj_result = result; rj_formals = formals; rj_globals = globals }

(* ------------------------------------------------------------------ *)
(* Cost metrics (paper §3.1.5).                                         *)

(** Total size of all jump-function expressions at a site (construction /
    evaluation cost proxy). *)
let site_cost (s : site_jf) =
  Array.fold_left (fun acc jf -> acc + Symbolic.size jf) 0 s.sf_formals
  + List.fold_left (fun acc (_, jf) -> acc + Symbolic.size jf) 0 s.sf_globals

(** Total support size (the polynomial propagation bound involves
    |support(J)|). *)
let site_support (s : site_jf) =
  let leaf_count jf =
    match Symbolic.support jf with Some ls -> List.length ls | None -> 0
  in
  Array.fold_left (fun acc jf -> acc + leaf_count jf) 0 s.sf_formals
  + List.fold_left (fun acc (_, jf) -> acc + leaf_count jf) 0 s.sf_globals

(* ------------------------------------------------------------------ *)
(* Forward jump function construction.                                  *)

(* Restrict a full symbolic value to what a given jump-function kind can
   express. *)
let restrict kind (sym : Symbolic.t) : Symbolic.t =
  match kind with
  | Polynomial -> sym
  | Passthrough -> (
    match sym with
    | Symbolic.Const _ | Symbolic.Leaf _ -> sym
    | _ -> Symbolic.unknown)
  | Intraconst -> if Symbolic.is_const sym then sym else Symbolic.unknown
  | Literal -> assert false (* handled separately: no symbolic evaluation *)

(** Build the forward jump functions for every call site of a procedure. *)
let build_site_jfs ~kind (pi : proc_ir) : site_jf list =
  let cfg = pi.pi_cfg in
  let sites = ref [] in
  Array.iteri
    (fun b arr ->
      if Dom.is_reachable pi.pi_dom b then
        Array.iteri
          (fun i instr ->
            match (instr : Cfg.instr) with
            | Cfg.Icall c ->
              let formal_jf pos (a : Prog.expr) : Symbolic.t =
                match kind with
                | Literal -> (
                  match a.edesc with
                  | Prog.Cint n -> Symbolic.const n
                  | _ -> Symbolic.unknown)
                | Intraconst | Passthrough | Polynomial ->
                  ignore pos;
                  restrict kind (Ssa_value.sym_of_expr pi.pi_sv ~block:b ~instr:i a)
              in
              let formals = Array.of_list (List.mapi formal_jf c.c_args) in
              let globals =
                match kind with
                | Literal ->
                  (* literal jump functions miss implicitly-passed globals *)
                  List.map (fun (key, _) -> (key, Symbolic.unknown)) pi.pi_global_vars
                | Intraconst | Passthrough | Polynomial ->
                  List.map
                    (fun (key, (v : Prog.var)) ->
                      if not (Prog.is_scalar v) || v.vty <> Prog.Tint then
                        (key, Symbolic.unknown)
                      else
                        let sym =
                          match Ssa.use_at pi.pi_ssa b i v.vname with
                          | Some n -> Ssa_value.sym_of_name pi.pi_sv n
                          | None -> Symbolic.unknown
                        in
                        (key, restrict kind sym))
                    pi.pi_global_vars
              in
              sites :=
                {
                  sf_caller = cfg.proc_name;
                  sf_callee = c.c_callee;
                  sf_site = c.c_site;
                  sf_formals = formals;
                  sf_globals = globals;
                }
                :: !sites
            | Cfg.Iassign _ | Cfg.Iastore _ | Cfg.Iread_scalar _
            | Cfg.Iread_elem _ | Cfg.Iprint _ ->
              ())
          arr)
    pi.pi_ssa.Ssa.instrs;
  let sites = List.rev !sites in
  if Ipcp_telemetry.Telemetry.enabled () then begin
    Ipcp_telemetry.Telemetry.add
      ("jf.sites." ^ kind_name kind)
      (List.length sites);
    List.iter
      (fun s -> Ipcp_telemetry.Telemetry.observe "jf.site_cost" (site_cost s))
      sites
  end;
  sites

let pp_site ppf (s : site_jf) =
  Fmt.pf ppf "%s -> %s @@%d: formals=[%a]" s.sf_caller s.sf_callee s.sf_site
    (Fmt.list ~sep:(Fmt.any "; ") Symbolic.pp)
    (Array.to_list s.sf_formals)
