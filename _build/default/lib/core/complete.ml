(** "Complete propagation" (paper Table 3, column 3).

    Iterate interprocedural constant propagation and dead-code elimination:
    run the polynomial analysis, fold the branches SCCP proved constant and
    sweep dead code; if anything was removed, reset all CONSTANTS sets to ⊤
    and re-run the propagation from scratch on the smaller program.  The
    paper observed that a single round of dead-code elimination always
    sufficed; the test suite checks the same on ours. *)

open Ipcp_frontend

type outcome = {
  final : Driver.t;  (** analysis of the final (DCE-stable) program *)
  substituted : int;  (** substitution count on the final program *)
  dce_rounds : int;  (** rounds that actually removed code *)
}

let run ?(config = Config.polynomial_with_mod) ?(max_rounds = 10)
    (prog : Prog.t) : outcome =
  let module Telemetry = Ipcp_telemetry.Telemetry in
  let rec loop prog rounds =
    Telemetry.incr "complete.rounds";
    let t, changed, procs =
      Telemetry.span "complete:round" (fun () ->
          let t = Driver.analyze config prog in
          (* fold constant branches per procedure using the seeded SCCP *)
          let changed = ref false in
          let procs =
            List.map
              (fun (proc : Prog.proc) ->
                let sccp = Driver.sccp_for t proc.pname in
                let proc', ch =
                  Ipcp_analysis.Dce.run ~cond_consts:sccp.cond_consts proc
                in
                if ch then changed := true;
                proc')
              prog.Prog.procs
          in
          (t, !changed, procs))
    in
    if changed && rounds < max_rounds then
      loop { prog with Prog.procs } (rounds + 1)
    else begin
      let _, stats = Substitute.apply t in
      Telemetry.add "complete.dce_rounds" rounds;
      { final = t; substituted = stats.total; dce_rounds = rounds }
    end
  in
  loop prog 0
