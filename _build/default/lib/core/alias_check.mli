(** Static detection of FORTRAN argument-aliasing violations: call sites
    where modified storage is reachable under two names in the callee.
    The analyzer (like the paper's) is sound only for conforming programs;
    this checker finds the non-conforming sites. *)

open Ipcp_frontend

type violation = {
  v_caller : string;
  v_callee : string;
  v_site : int;  (** call-site id *)
  v_reason : string;
}

val pp_violation : violation Fmt.t

(** All aliasing violations in the program. *)
val check : Prog.t -> violation list
