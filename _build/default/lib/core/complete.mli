(** "Complete propagation" (paper Table 3, column 3): iterate
    interprocedural constant propagation with dead-code elimination until no
    more code dies, resetting all CONSTANTS to ⊤ between rounds.

    Re-analysis rounds share staged {!Driver} artifacts: procedures DCE
    left untouched (with untouched transitive callees) keep their
    CFG/SSA/symbolic IR and return jump functions from the previous
    round. *)

open Ipcp_frontend

type outcome = {
  final : Driver.t;  (** analysis of the final, DCE-stable program *)
  substituted : int;  (** substitution count on the final program *)
  dce_rounds : int;  (** rounds that actually removed code *)
}

val run : ?config:Config.t -> ?max_rounds:int -> Prog.t -> outcome
