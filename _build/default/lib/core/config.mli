(** Analyzer configuration — the experimental axes of the paper's Tables 2
    and 3. *)

type t = {
  kind : Jump_function.kind;  (** which forward jump function to build *)
  return_jfs : bool;
  use_mod : bool;  (** MOD summaries vs. worst-case call kills *)
  interprocedural : bool;  (** [false]: the intraprocedural baseline *)
}

(** Pass-through + return JFs + MOD: the paper's recommended setup. *)
val default : t

(** The six configurations of Table 2, with column labels. *)
val table2_configs : (string * t) list

val polynomial_no_mod : t
val polynomial_with_mod : t
val intraprocedural_only : t

val pp : t Fmt.t
