(** Interprocedural propagation over the *binding multi-graph*.

    The paper (§2) notes that "alternative formulations based on the binding
    multi-graph are possible [Cooper & Kennedy]" and that Callahan et al.'s
    method "essentially models the binding graph computation on the call
    graph".  This module implements that alternative: nodes are
    (procedure, parameter) pairs; for every forward jump function J_y^s at a
    site s in p, an edge runs from each (p, x) with x ∈ support(J_y^s) to
    (callee, y).  When a node's value lowers, only the jump functions that
    actually depend on it are re-evaluated — the sparse formulation behind
    the O(Σ cost(J)) bound of §3.1.5 for pass-through jump functions.

    The result is bit-for-bit the same VAL maps as {!Solver.run} (a property
    test asserts this); the benchmark harness compares their running
    times. *)

open Ipcp_frontend
open Ipcp_analysis

type node = string * Prog.param

(* A dependency: when the source node changes, re-evaluate [jf] and meet the
   result into [target] of [callee]. *)
type dep = { d_caller : string; d_callee : string; d_target : Prog.param; d_jf : Symbolic.t }

let param_of_leaf = function
  | Symbolic.Lformal i -> Prog.Pformal i
  | Symbolic.Lglobal k -> Prog.Pglob k

(** Solve; same inputs and output type as {!Solver.run}. *)
let run (cg : Callgraph.t) ~(site_jfs : Jump_function.site_jf list)
    ~(global_keys : string list) : Solver.result =
  let prog = cg.Callgraph.prog in
  let vals : (string, Solver.val_map) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Prog.proc) ->
      let is_main = p.pname = prog.main in
      let initial = if is_main then Const_lattice.Bottom else Const_lattice.Top in
      let m =
        List.fold_left
          (fun m (v : Prog.var) ->
            match v.vkind with
            | Prog.Kformal i -> Prog.Param_map.add (Prog.Pformal i) initial m
            | _ -> m)
          Prog.Param_map.empty p.pformals
      in
      let m =
        List.fold_left
          (fun m key ->
            let v =
              if is_main then
                match Prog.data_value_of_global prog key with
                | Some c -> Const_lattice.Const c
                | None -> Const_lattice.Bottom
              else initial
            in
            Prog.Param_map.add (Prog.Pglob key) v m)
          m global_keys
      in
      Hashtbl.replace vals p.pname m)
    prog.procs;
  let stats = { Solver.iterations = 0; jf_evaluations = 0; meets = 0; widened = 0 } in
  (* ---- build the binding multi-graph ---- *)
  let deps : (node, dep list) Hashtbl.t = Hashtbl.create 64 in
  let add_dep node dep =
    let old = Hashtbl.find_opt deps node |> Option.value ~default:[] in
    Hashtbl.replace deps node (dep :: old)
  in
  let initial_deps = ref [] in
  let register caller callee target jf =
    let dep = { d_caller = caller; d_callee = callee; d_target = target; d_jf = jf } in
    (* every jump function is evaluated once up front; thereafter only when
       a support member changes *)
    initial_deps := dep :: !initial_deps;
    match Symbolic.support jf with
    | None -> () (* ⊥ jump function: its one initial evaluation suffices *)
    | Some leaves ->
      List.iter (fun l -> add_dep (caller, param_of_leaf l) dep) leaves
  in
  List.iter
    (fun (sjf : Jump_function.site_jf) ->
      Array.iteri
        (fun pos jf -> register sjf.sf_caller sjf.sf_callee (Prog.Pformal pos) jf)
        sjf.sf_formals;
      List.iter
        (fun (key, jf) -> register sjf.sf_caller sjf.sf_callee (Prog.Pglob key) jf)
        sjf.sf_globals)
    site_jfs;
  (* ---- propagate ---- *)
  let work : node Ipcp_support.Worklist.t = Ipcp_support.Worklist.create () in
  let value_of proc param =
    match Hashtbl.find_opt vals proc with
    | None -> Const_lattice.Bottom
    | Some m ->
      Prog.Param_map.find_opt param m |> Option.value ~default:Const_lattice.Top
  in
  let lower proc param incoming =
    stats.meets <- stats.meets + 1;
    let old = value_of proc param in
    let nv = Const_lattice.meet old incoming in
    if not (Const_lattice.equal old nv) then begin
      (match Hashtbl.find_opt vals proc with
      | Some m -> Hashtbl.replace vals proc (Prog.Param_map.add param nv m)
      | None ->
        Hashtbl.replace vals proc (Prog.Param_map.singleton param nv));
      Ipcp_support.Worklist.push work (proc, param)
    end
  in
  let evaluate (dep : dep) =
    let caller_vals =
      Hashtbl.find_opt vals dep.d_caller
      |> Option.value ~default:Prog.Param_map.empty
    in
    let incoming = Solver.eval_jf stats caller_vals dep.d_jf in
    lower dep.d_callee dep.d_target incoming
  in
  (* seed: main's parameters are already ⊥; its dependents must see that,
     and support-free jump functions contribute their constants *)
  List.iter evaluate (List.rev !initial_deps);
  Ipcp_support.Worklist.drain work (fun node ->
      stats.iterations <- stats.iterations + 1;
      List.iter evaluate
        (Hashtbl.find_opt deps node |> Option.value ~default:[]));
  { Solver.vals; stats; degraded = [] }
