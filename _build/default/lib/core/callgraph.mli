(** The program call graph: a multigraph whose edges carry call sites, with
    Tarjan SCCs for bottom-up/top-down traversal orders. *)

open Ipcp_frontend

type edge = {
  e_caller : string;
  e_callee : string;
  e_site : Prog.call_site;
}

type t = {
  prog : Prog.t;
  nodes : string list;
  edges : edge list;
  out_edges : (string, edge list) Hashtbl.t;
  in_edges : (string, edge list) Hashtbl.t;
  sccs : string list list;  (** reverse topological: callees first *)
}

val build : Prog.t -> t

val callees_of : t -> string -> edge list
val callers_of : t -> string -> edge list

(** Callees before callers (members of a cycle in arbitrary order). *)
val bottom_up : t -> string list

val top_down : t -> string list

(** Is the procedure part of a recursive cycle? *)
val in_cycle : t -> string -> bool

val reachable_from_main : t -> string list

val pp : t Fmt.t
