(** The four-stage analyzer pipeline (paper §4.1):

    1. generation of return jump functions (bottom-up over the call graph);
    2. generation of forward jump functions (top-down, using the return
       jump functions);
    3. interprocedural propagation of constants;
    4. recording the results (CONSTANTS sets; substitution is in
       {!Substitute}).

    The configuration selects the forward jump-function implementation,
    whether return jump functions participate, and whether MOD summaries are
    available (paper Tables 2 and 3). *)

open Ipcp_frontend
open Ipcp_analysis
module Telemetry = Ipcp_telemetry.Telemetry

type t = {
  config : Config.t;
  prog : Prog.t;
  cg : Callgraph.t;
  modref : Modref.t;
  ret_jfs : (string, Jump_function.ret_jf) Hashtbl.t;
  irs : (string, Jump_function.proc_ir) Hashtbl.t;
      (** phase-2 IR (full oracle), reused by the substitution pass *)
  site_jfs : Jump_function.site_jf list;
  solution : Solver.result;
}

(** Run the full pipeline on a resolved program. *)
let rec analyze (config : Config.t) (prog : Prog.t) : t =
  Telemetry.span "analyze" (fun () -> analyze_spanned config prog)

and analyze_spanned (config : Config.t) (prog : Prog.t) : t =
  let cg = Callgraph.build prog in
  let modref =
    if config.use_mod then Modref.compute cg else Modref.worst_case cg
  in
  (* ---- stage 1: return jump functions, bottom-up ---- *)
  let ret_jfs : (string, Jump_function.ret_jf) Hashtbl.t = Hashtbl.create 16 in
  Telemetry.span "stage1:return_jfs" (fun () ->
      if config.return_jfs then begin
        let oracle = Jump_function.oracle_of_table ret_jfs in
        List.iter
          (fun name ->
            let proc = Prog.find_proc_exn prog name in
            let ir = Jump_function.build_ir ~oracle ~modref prog proc in
            Hashtbl.replace ret_jfs name (Jump_function.build_ret_jf ~modref ir))
          (Callgraph.bottom_up cg)
      end);
  (* ---- stage 2: forward jump functions, top-down ---- *)
  let oracle =
    if config.return_jfs then Some (Jump_function.oracle_of_table ret_jfs)
    else None
  in
  let irs : (string, Jump_function.proc_ir) Hashtbl.t = Hashtbl.create 16 in
  let site_jfs =
    Telemetry.span "stage2:forward_jfs" (fun () ->
        List.iter
          (fun name ->
            let proc = Prog.find_proc_exn prog name in
            let ir = Jump_function.build_ir ?oracle ~modref prog proc in
            Hashtbl.replace irs name ir)
          (Callgraph.top_down cg);
        if not config.interprocedural then []
        else
          List.concat_map
            (fun name ->
              Jump_function.build_site_jfs ~kind:config.kind
                (Hashtbl.find irs name))
            (Callgraph.top_down cg))
  in
  (* ---- stage 3: interprocedural propagation ---- *)
  let global_keys = List.map Prog.global_key (Prog.all_globals prog) in
  let solution =
    Telemetry.span "stage3:propagate" (fun () -> solve config cg ~site_jfs ~global_keys)
  in
  (* ---- stage 4: recording the results ---- *)
  Telemetry.span "stage4:record" (fun () ->
      let t = { config; prog; cg; modref; ret_jfs; irs; site_jfs; solution } in
      if Telemetry.enabled () then begin
        Telemetry.add ("jf.eval." ^ Jump_function.kind_name config.kind)
          solution.Solver.stats.jf_evaluations;
        Telemetry.add "driver.constants_found"
          (List.fold_left
             (fun acc (p : Prog.proc) ->
               acc + List.length (Solver.constants_of solution p.pname))
             0 prog.procs)
      end;
      t)

and solve (config : Config.t) cg ~site_jfs ~global_keys : Solver.result =
  let prog = cg.Callgraph.prog in
  if config.interprocedural then Solver.run cg ~site_jfs ~global_keys
    else begin
      (* baseline: no propagation; every parameter of every procedure is ⊥
         so that only locally derived constants survive *)
      let vals = Hashtbl.create 16 in
      List.iter
        (fun (p : Prog.proc) ->
          let m =
            List.fold_left
              (fun m (v : Prog.var) ->
                match v.vkind with
                | Prog.Kformal i ->
                  Prog.Param_map.add (Prog.Pformal i) Const_lattice.Bottom m
                | _ -> m)
              Prog.Param_map.empty p.pformals
          in
          let m =
            List.fold_left
              (fun m key -> Prog.Param_map.add (Prog.Pglob key) Const_lattice.Bottom m)
              m global_keys
          in
          Hashtbl.replace vals p.pname m)
        prog.procs;
      { Solver.vals; stats = { iterations = 0; jf_evaluations = 0; meets = 0 } }
    end

(** CONSTANTS(p) for every procedure, in program order. *)
let constants (t : t) : (string * (Prog.param * int) list) list =
  List.map
    (fun (p : Prog.proc) -> (p.pname, Solver.constants_of t.solution p.pname))
    t.prog.procs

(** Total number of (procedure, parameter) constant facts. *)
let constants_count (t : t) =
  List.fold_left (fun acc (_, cs) -> acc + List.length cs) 0 (constants t)

(** Entry-value environment for a procedure, as consumed by SCCP: the
    constant (if any) each formal/global holds on entry. *)
let entry_env (t : t) (proc : Prog.proc) : Prog.var -> int option =
 fun v ->
  if v.vty <> Prog.Tint || Prog.is_array v then None
  else
    match v.vkind with
    | Prog.Kformal i ->
      Const_lattice.const_value (Solver.lookup t.solution proc.pname (Prog.Pformal i))
    | Prog.Kglobal g ->
      Const_lattice.const_value
        (Solver.lookup t.solution proc.pname (Prog.Pglob (Prog.global_key g)))
    | Prog.Klocal when proc.pkind = Prog.Pmain ->
      (* data-initialized locals of the main program hold their load-time
         values on entry *)
      Prog.data_value_in_main t.prog v
    | Prog.Klocal | Prog.Kresult -> None

(** The return-jump-function oracle of this analysis (if enabled). *)
let oracle (t : t) : Ssa_value.oracle option =
  if t.config.return_jfs then Some (Jump_function.oracle_of_table t.ret_jfs)
  else None

(** Run SCCP for one procedure, seeded with the discovered entry facts. *)
let sccp_for (t : t) (name : string) : Sccp.result =
  let ir = Hashtbl.find t.irs name in
  let proc = ir.Jump_function.pi_proc in
  Sccp.run ?oracle:(oracle t) ~entry_env:(entry_env t proc) ir.Jump_function.pi_ssa

let pp_constants ppf (t : t) =
  List.iter
    (fun (name, cs) ->
      if cs <> [] then begin
        let proc = Prog.find_proc_exn t.prog name in
        Fmt.pf ppf "%s: %a@." name
          (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (param, c) ->
               Fmt.pf ppf "%s=%d" (Prog.param_name t.prog proc param) c))
          cs
      end)
    (constants t)
