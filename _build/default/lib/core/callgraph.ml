(** The program call graph.

    Nodes are procedures; each edge carries its call site (a [call]
    statement or a function call inside an expression).  The graph is a
    multigraph — two calls from [p] to [q] are two edges, each with its own
    jump functions.  Tarjan's algorithm provides the strongly-connected
    components in reverse topological order, which is the bottom-up order
    used to build return jump functions and the MOD/REF fixpoint
    (FORTRAN 77 has no recursion, but MiniFort allows it, and every consumer
    of this module treats members of a non-trivial SCC conservatively). *)

open Ipcp_frontend

type edge = {
  e_caller : string;
  e_callee : string;
  e_site : Prog.call_site;
}

type t = {
  prog : Prog.t;
  nodes : string list;  (** in program order *)
  edges : edge list;
  out_edges : (string, edge list) Hashtbl.t;
  in_edges : (string, edge list) Hashtbl.t;
  sccs : string list list;  (** reverse topological: callees before callers *)
}

let build (prog : Prog.t) : t =
  let nodes = List.map (fun (p : Prog.proc) -> p.pname) prog.procs in
  let edges =
    List.concat_map
      (fun (p : Prog.proc) ->
        List.map
          (fun (cs : Prog.call_site) ->
            { e_caller = p.pname; e_callee = cs.cs_callee; e_site = cs })
          (Prog.call_sites p))
      prog.procs
  in
  let out_edges = Hashtbl.create 16 and in_edges = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace out_edges n [];
      Hashtbl.replace in_edges n [])
    nodes;
  List.iter
    (fun e ->
      Hashtbl.replace out_edges e.e_caller (e :: Hashtbl.find out_edges e.e_caller);
      Hashtbl.replace in_edges e.e_callee (e :: Hashtbl.find in_edges e.e_callee))
    edges;
  (* Tarjan SCC; result naturally comes out in reverse topological order. *)
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun e ->
        let w = e.e_callee in
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Hashtbl.find out_edges v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* !sccs currently has later-finished (callers) first; reverse for
     bottom-up order. *)
  { prog; nodes; edges; out_edges; in_edges; sccs = List.rev !sccs }

let callees_of t name = Hashtbl.find_opt t.out_edges name |> Option.value ~default:[]

let callers_of t name = Hashtbl.find_opt t.in_edges name |> Option.value ~default:[]

(** Bottom-up order over procedures (callees before callers; members of a
    cycle in arbitrary relative order). *)
let bottom_up t = List.concat t.sccs

(** Top-down order (callers before callees). *)
let top_down t = List.rev (bottom_up t)

(** Is [name] part of a recursive cycle (self-loop or larger SCC)? *)
let in_cycle t name =
  List.exists
    (fun scc ->
      match scc with
      | [ single ] ->
        single = name
        && List.exists (fun e -> e.e_callee = name) (callees_of t name)
      | many -> List.mem name many && List.length many > 1)
    t.sccs

(** Procedures reachable from the main program. *)
let reachable_from_main t =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      List.iter (fun e -> go e.e_callee) (callees_of t n)
    end
  in
  go t.prog.main;
  List.filter (Hashtbl.mem seen) t.nodes

let pp ppf t =
  List.iter
    (fun n ->
      Fmt.pf ppf "%s -> %a@." n
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        (List.map (fun e -> e.e_callee) (callees_of t n)))
    t.nodes
