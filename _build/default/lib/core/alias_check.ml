(** Static detection of FORTRAN argument-aliasing violations.

    The FORTRAN 77 standard (and the paper's analysis, implicitly) requires
    that a procedure never modifies storage that is visible under two names
    in its scope: a by-reference actual that the callee modifies must not
    also be reachable through another argument or through a common block.
    Interprocedural constant propagation is sound only for conforming
    programs; this checker finds the non-conforming call sites so users can
    trust the analyzer's output.

    Detected violations at a call site [p → q]:
    - the same variable appears in two argument positions and [q] may
      modify at least one of them;
    - a common global is passed as an actual while [q] may modify that
      global directly (writes through the common alias the formal);
    - a common global is passed into a formal that [q] may modify, while
      [q] also reads or writes that global (writes through the formal alias
      the common). *)

open Ipcp_frontend
module Str_set = Modref.Str_set

type violation = {
  v_caller : string;
  v_callee : string;
  v_site : int;  (** call-site id *)
  v_reason : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "%s -> %s (site %d): %s" v.v_caller v.v_callee v.v_site v.v_reason

(* The variable (if any) whose storage an actual argument exposes. *)
let storage_base (a : Prog.expr) : Prog.var option =
  match a.edesc with
  | Prog.Evar v -> Some v
  | Prog.Earr (v, _) -> Some v
  | _ -> None

let check_site (modref : Modref.t) (caller : Prog.proc)
    (cs : Prog.call_site) : violation list =
  let violations = ref [] in
  let report reason =
    violations :=
      {
        v_caller = caller.pname;
        v_callee = cs.cs_callee;
        v_site = cs.cs_id;
        v_reason = reason;
      }
      :: !violations
  in
  let actuals = List.mapi (fun i a -> (i, storage_base a)) cs.cs_args in
  (* rule 1: same variable in two positions, one of them modified *)
  List.iter
    (fun (i, base_i) ->
      match base_i with
      | None -> ()
      | Some (vi : Prog.var) ->
        List.iter
          (fun (j, base_j) ->
            match base_j with
            | Some (vj : Prog.var)
              when i < j && vi.vname = vj.vname
                   && (Modref.modifies_formal modref cs.cs_callee i
                      || Modref.modifies_formal modref cs.cs_callee j) ->
              report
                (Fmt.str
                   "variable %s is passed in positions %d and %d and the \
                    callee may modify it"
                   vi.vname (i + 1) (j + 1))
            | _ -> ())
          actuals)
    actuals;
  (* rules 2 and 3: a global passed as an actual *)
  let callee_sum = Modref.summary modref cs.cs_callee in
  List.iter
    (fun (i, base) ->
      match base with
      | Some ({ Prog.vkind = Kglobal g; _ } as v) ->
        let key = Prog.global_key g in
        if Modref.modifies_global modref cs.cs_callee key then
          report
            (Fmt.str
               "global %s (common /%s/) is passed as argument %d but the \
                callee may modify the common"
               v.vname g.gblock (i + 1))
        else if
          Modref.modifies_formal modref cs.cs_callee i
          && (Str_set.mem key callee_sum.ref_globals
             || Str_set.mem key callee_sum.mod_globals)
        then
          report
            (Fmt.str
               "global %s (common /%s/) is passed into modified argument %d \
                while the callee also accesses the common"
               v.vname g.gblock (i + 1))
      | Some _ | None -> ())
    actuals;
  List.rev !violations

(* FORTRAN also forbids redefining an active do-variable.  Sema rejects
   direct assignments; the remaining hole is passing the do-variable by
   reference to a procedure that modifies the bound formal, which needs MOD
   information and so is checked here. *)
let check_do_variables (modref : Modref.t) (proc : Prog.proc) : violation list =
  let violations = ref [] in
  let check_call active (s : Prog.stmt) callee args =
    List.iteri
      (fun pos (a : Prog.expr) ->
        match a.edesc with
        | Prog.Evar v
          when List.mem v.vname active
               && Modref.modifies_formal modref callee pos ->
          violations :=
            {
              v_caller = proc.pname;
              v_callee = callee;
              v_site = s.sid;
              v_reason =
                Fmt.str
                  "do-variable %s is passed in position %d and the callee \
                   may modify it"
                  v.vname (pos + 1);
            }
            :: !violations
        | _ -> ())
      args
  in
  let rec walk active stmts =
    List.iter
      (fun (s : Prog.stmt) ->
        match s.sdesc with
        | Prog.Scall (callee, args) -> check_call active s callee args
        | Prog.Sdo (v, _, _, _, body) -> walk (v.vname :: active) body
        | Prog.Sif (arms, els) ->
          List.iter (fun (_, b) -> walk active b) arms;
          walk active els
        | Prog.Sdowhile (_, body) -> walk active body
        | Prog.Sassign _ | Prog.Sgoto _ | Prog.Scontinue | Prog.Sreturn
        | Prog.Sstop | Prog.Sprint _ | Prog.Sread _ ->
          ())
      stmts
  in
  walk [] proc.pbody;
  List.rev !violations

(** Check a whole program; returns all aliasing violations. *)
let check (prog : Prog.t) : violation list =
  let cg = Callgraph.build prog in
  let modref = Modref.compute cg in
  List.concat_map
    (fun (p : Prog.proc) ->
      List.concat_map (check_site modref p) (Prog.call_sites p)
      @ check_do_variables modref p)
    prog.procs
