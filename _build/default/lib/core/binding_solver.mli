(** Propagation over the binding multi-graph — the sparse alternative
    formulation the paper's §2 cites (Cooper & Kennedy).  Nodes are
    (procedure, parameter) pairs; when a node's value lowers, only the jump
    functions whose support contains it are re-evaluated.

    Produces exactly the same VAL maps as {!Solver.run} (property-tested). *)

val run :
  Callgraph.t ->
  site_jfs:Jump_function.site_jf list ->
  global_keys:string list ->
  Solver.result
