(** Jump functions — the paper's subject (§3).

    Forward jump functions approximate the value of each actual parameter
    (and each common global) at each call site as a function of the
    enclosing procedure's entry values; the four implementations trade
    construction cost against the class of constants they can propagate.
    Return jump functions approximate what a call leaves in its function
    result, modified by-reference formals, and modified globals. *)

open Ipcp_frontend
open Ipcp_analysis

(** The four forward implementations, in increasing precision (§3.1):
    each propagates a superset of its predecessor's constants. *)
type kind = Literal | Intraconst | Passthrough | Polynomial

val kind_name : kind -> string
val all_kinds : kind list

module Int_map : Map.S with type key = int
module Str_map : Map.S with type key = string

(** Return jump functions of one procedure (§3.2), as symbolic expressions
    over the procedure's own entry values. *)
type ret_jf = {
  rj_result : Symbolic.t;  (** [Unknown] for subroutines *)
  rj_formals : Symbolic.t Int_map.t;  (** only formals in MOD *)
  rj_globals : Symbolic.t Str_map.t;  (** only globals in MOD *)
}

val empty_ret_jf : ret_jf

(** Forward jump functions of one call site: one per callee formal
    position, one per program global. *)
type site_jf = {
  sf_caller : string;
  sf_callee : string;
  sf_site : int;  (** program-wide call-site id *)
  sf_formals : Symbolic.t array;
  sf_globals : (string * Symbolic.t) list;
}

(** Per-procedure IR bundle: CFG, dominators, SSA, symbolic values, and the
    variable standing for each program global in this procedure. *)
type proc_ir = {
  pi_proc : Prog.proc;
  pi_cfg : Ipcp_ir.Cfg.t;
  pi_dom : Ipcp_ir.Dom.t;
  pi_ssa : Ipcp_ir.Ssa.t;
  pi_sv : Ssa_value.t;
  pi_global_vars : (string * Prog.var) list;
}

(** Build the IR bundle.  [modref] drives the call-kill sets; [oracle]
    plugs return-jump-function evaluation into call definitions. *)
val build_ir :
  ?oracle:Ssa_value.oracle -> modref:Modref.t -> Prog.t -> Prog.proc -> proc_ir

(** An oracle evaluating return jump functions from a table, over constant
    actuals only (the paper's §3.2 rule). *)
val oracle_of_table : (string, ret_jf) Hashtbl.t -> Ssa_value.oracle

(** Return jump functions of one procedure: the meet of each value's
    symbolic expression over all reachable exits.  With worst-case MOD
    information only the function-result jump function is produced. *)
val build_ret_jf : modref:Modref.t -> proc_ir -> ret_jf

(** Forward jump functions for every call site of a procedure, restricted
    to what [kind] can express. *)
val build_site_jfs : kind:kind -> proc_ir -> site_jf list

(** Total expression size at a site — the construction/evaluation cost
    proxy of §3.1.5. *)
val site_cost : site_jf -> int

(** Total support size at a site (the polynomial propagation bound carries
    a |support(J)| factor). *)
val site_support : site_jf -> int

val pp_site : site_jf Fmt.t
