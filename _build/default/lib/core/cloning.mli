(** Procedure cloning guided by interprocedural constants (the
    Metzger–Stroud application the paper cites): when call sites pass
    different constants to the same procedure, duplicate it per constant
    signature so the meet no longer destroys them.  Clones are real
    procedures with fresh ids; only [call] statements are retargeted. *)

open Ipcp_frontend

type result = {
  cloned : Prog.t;
  clones_made : int;
  renamings : (int * string) list;  (** call-site id → new callee name *)
}

(** [?artifacts] supplies prepared staged artifacts for [prog] when the
    caller already holds them (avoids re-running stages 1–2). *)
val clone :
  ?config:Config.t ->
  ?max_clones_per_proc:int ->
  ?artifacts:Driver.artifacts ->
  Prog.t ->
  result

(** Iterate cloning (new constants can expose new opportunities), bounded
    by [rounds].  Returns the final program and total clones made. *)
val clone_to_fixpoint : ?config:Config.t -> ?rounds:int -> Prog.t -> Prog.t * int
