(** Interprocedural MOD/REF side-effect summaries (Cooper–Kennedy style):
    which formals and globals each procedure may modify or reference,
    directly or through calls.  The paper's Table 3 shows these are
    decisive for constant propagation. *)

module Int_set : Set.S with type elt = int
module Str_set : Set.S with type elt = string

type summary = {
  mod_formals : Int_set.t;  (** positions whose by-ref actual may change *)
  mod_globals : Str_set.t;  (** by {!Ipcp_frontend.Prog.global_key} *)
  ref_globals : Str_set.t;
}

type t

val summary : t -> string -> summary

(** True when built by {!worst_case}: every query answers "modified". *)
val is_worst_case : t -> bool

val modifies_formal : t -> string -> int -> bool
val modifies_global : t -> string -> string -> bool

(** Direct effects + fixpoint closure over the call graph (handles
    recursion). *)
val compute : Callgraph.t -> t

(** The "no MOD information" configuration (Table 3, column 1). *)
val worst_case : Callgraph.t -> t

val pp : t Fmt.t
