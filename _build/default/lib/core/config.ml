(** Analyzer configuration: the experimental axes of the paper.

    Table 2 varies [kind] × [return_jfs]; Table 3 varies [use_mod] and
    compares against the purely intraprocedural baseline
    ([interprocedural = false], which still uses MOD information, as the
    paper does "for fair comparison"). *)

type t = {
  kind : Jump_function.kind;  (** which forward jump function to build *)
  return_jfs : bool;  (** build and use return jump functions *)
  use_mod : bool;  (** use MOD summaries (vs. worst-case call kills) *)
  interprocedural : bool;
      (** when false, skip interprocedural propagation entirely: the
          Table 3 "intraprocedural propagation" baseline *)
}

let make ~kind ?(return_jfs = true) ?(use_mod = true)
    ?(interprocedural = true) () =
  { kind; return_jfs; use_mod; interprocedural }

let equal a b =
  a.kind = b.kind
  && a.return_jfs = b.return_jfs
  && a.use_mod = b.use_mod
  && a.interprocedural = b.interprocedural

let default = make ~kind:Jump_function.Passthrough ()

(** The six configurations of Table 2, paired with their column labels. *)
let table2_configs =
  [
    ("polynomial+ret", make ~kind:Jump_function.Polynomial ());
    ("passthrough+ret", make ~kind:Jump_function.Passthrough ());
    ("intraconst+ret", make ~kind:Jump_function.Intraconst ());
    ("literal+ret", make ~kind:Jump_function.Literal ());
    ("polynomial-ret", make ~kind:Jump_function.Polynomial ~return_jfs:false ());
    ( "passthrough-ret",
      make ~kind:Jump_function.Passthrough ~return_jfs:false () );
  ]

(** The four configurations of Table 3 (complete propagation is driven by
    {!Complete} on top of [polynomial_with_mod]). *)
let polynomial_no_mod = make ~kind:Jump_function.Polynomial ~use_mod:false ()

let polynomial_with_mod = make ~kind:Jump_function.Polynomial ()

let intraprocedural_only =
  (* return jump functions are an interprocedural mechanism; the baseline
     keeps only MOD information, as the paper specifies *)
  make ~kind:Jump_function.Passthrough ~return_jfs:false
    ~interprocedural:false ()

let pp ppf t =
  Fmt.pf ppf "%s%s%s%s"
    (Jump_function.kind_name t.kind)
    (if t.return_jfs then "+ret" else "-ret")
    (if t.use_mod then "+mod" else "-mod")
    (if t.interprocedural then "" else " (intra only)")

let to_string t = Fmt.str "%a" pp t
