(** Synthetic benchmark programs [ocean], [qcd] and [simple]. *)

(** [ocean] — the return-jump-function showcase.

    Paper shape: an initialization routine assigns constant values to many
    common variables; recognizing this lets the analyzer propagate constants
    everywhere.  With return jump functions 194 constants; without them only
    62 (more than a 3× drop).  The literal jump function (57) misses the
    implicitly-passed globals entirely.  Complete propagation adds ten more
    (204): folding branches on the constant configuration globals removes
    call sites whose arguments polluted the solution.  Without MOD 79;
    intraprocedural baseline 56.

    Construction: [ocinit] sets eight configuration globals; the main
    program then calls the solver phases *directly* (a flat call structure,
    so the intraprocedural-constant jump function performs as well as the
    pass-through one, as in the paper); every phase uses the globals
    heavily.  A debug branch guarded by a constant global contains a call
    site with conflicting arguments — dead, but only complete propagation
    can tell. *)
let ocean =
  {|
program ocean
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer it
  call ocinit
  do it = 1, 3
    call baro(64, 2)
    call clinic
    call tracer
  end do
  if (debug .eq. 1) then
    call relax(999, 7)
  end if
  call relax(50, 2)
  call halo(16, 4)
  call filter(8, 3)
  call state
  call energy
  call wind(12, 3)
  call vort
  call output
end

subroutine ocinit
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  common /scr/ wrk
  real wrk(32)
  integer i
  nx = 64
  ny = 64
  nlev = 8
  dt = 30
  mode = 0
  debug = 0
  kshal = 2
  kdeep = 5
  do i = 1, 32
    wrk(i) = 0.0
  end do
end

subroutine baro(n, half)
  integer n, half, i, j, nisle
  real psi
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  nisle = 3
  psi = 0.0
  do j = 1, ny
    do i = 1, nx
      psi = psi + dt
    end do
  end do
  print *, 'baro', nx, ny, dt, n / half, nx * ny, dt * 2
  print *, 'isle', nisle, nisle * 2, n - half
end

subroutine clinic
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer k, nmix, nvis
  real u
  nmix = 3
  nvis = nmix * 2
  u = 0.0
  do k = 1, nlev
    u = u + dt * k
  end do
  print *, 'clinic', nlev, dt, nlev * dt, nx - ny, kshal, kdeep
  print *, 'mix', nmix, nvis, nvis - nmix
end

subroutine tracer
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer k, nsalt, ntemp
  real s, t
  nsalt = 1
  ntemp = nsalt + 1
  s = 34.7
  t = 0.0
  do k = 1, nlev
    t = t + s / nlev
  end do
  print *, 'tracer', nlev, kshal + kdeep, mode, nx + ny, nlev - kshal
  print *, 'trc', nsalt, ntemp, nsalt * ntemp
end

subroutine relax(niter, nsub)
  integer niter, nsub, i, ntol
  real resid
  ntol = 6
  resid = 1.0
  do i = 1, niter
    resid = resid * 0.5
  end do
  print *, 'relax', niter, nsub, niter / nsub, niter - nsub
  print *, 'tol', ntol, ntol + 1
end

subroutine halo(nw, nh)
  integer nw, nh, npad
  npad = 1
  print *, 'halo', nw, nh, nw * nh, nw - nh, npad, npad + nw
end

subroutine filter(np, nq)
  integer np, nq, nwgt
  nwgt = 5
  print *, 'filt', np, nq, np + nq, np * nq, nwgt, nwgt - nq
end

subroutine state
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer k
  real rho
  rho = 0.0
  do k = 1, nlev
    rho = rho + dt * 0.001
  end do
  print *, 'state', nlev, dt, nx, ny, kshal * kdeep, nlev + dt
end

subroutine energy
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  print *, 'energy', nx * ny, nlev * dt, mode, debug + 1, kdeep * 2, nx / nlev
end

subroutine wind(ntau, ncomp)
  integer ntau, ncomp, nwk
  nwk = 4
  print *, 'wind', ntau, ncomp, ntau / ncomp, ntau - ncomp, nwk, nwk + ntau
end

subroutine vort
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  print *, 'vort', nx * 2, ny / 2, dt + nlev, mode + 1, debug, kdeep - kshal
end

subroutine output
  common /cfg/ nx, ny, nlev, dt, mode, debug, kshal, kdeep
  integer nx, ny, nlev, dt, mode, debug, kshal, kdeep
  print *, 'out', nx, ny, nlev, dt, mode, debug, kshal, kdeep
end
|}

(** [qcd] — almost everything is locally constant; every configuration
    nearly ties.

    Paper shape: 180 constants under all six Table-2 configurations; the
    intraprocedural baseline alone finds 179; losing MOD costs 11.

    Construction: lattice-QCD-flavoured routines full of local integer
    constants used immediately (immune to every configuration axis), a
    small number of constants used after harmless calls (the MOD delta),
    and a single literal argument providing the one interprocedural
    constant. *)
let qcd =
  {|
program qcd
  integer isweep, nswp
  data nswp /2/
  call mstats
  do isweep = 1, nswp
    call update
    call measure
  end do
  call gauge
  call plaqet
  call ferm
  call hmcstp
  call wrapup(4)
end

subroutine mstats
  common /acc/ nacc, nrej
  integer nacc, nrej
  nacc = 0
  nrej = 0
end

subroutine bump
  common /acc/ nacc, nrej
  integer nacc, nrej
  nacc = nacc + 1
end

subroutine update
  integer nsite, ncol, beta2, i, j
  real act
  nsite = 16
  ncol = 3
  beta2 = 12
  act = 0.0
  do i = 1, nsite
    do j = 1, ncol
      act = act + beta2
    end do
  end do
  print *, 'upd', nsite, ncol, beta2, nsite * ncol, beta2 / ncol, nsite + 1
  call bump
  print *, 'upd2', nsite - ncol
end

subroutine measure
  integer nmeas, nskip, nbin, k
  real plaq
  nmeas = 10
  nskip = 5
  nbin = 2
  plaq = 0.0
  do k = 1, nmeas
    plaq = plaq + nbin
  end do
  print *, 'meas', nmeas, nskip, nbin, nmeas / nskip, nbin * 3, nmeas + nskip
  call bump
  print *, 'meas2', nskip - nbin
end

subroutine gauge
  integer nlink, ndir, ncb, k
  real u
  nlink = 24
  ndir = 4
  ncb = 2
  u = 0.0
  do k = 1, ndir
    u = u + nlink
  end do
  print *, 'gauge', nlink, ndir, ncb, nlink / ndir, ndir * ncb, nlink - ncb
  print *, 'gaug2', nlink + ndir, ncb + 1
end

subroutine plaqet
  integer nplaq, nspace, ntime, k
  real p
  nplaq = 6
  nspace = 3
  ntime = 3
  p = 0.0
  do k = 1, nplaq
    p = p + nspace
  end do
  print *, 'plaq', nplaq, nspace, ntime, nplaq * nspace, nplaq - ntime
  print *, 'plq2', nspace + ntime, nplaq / nspace, ntime * 2, nplaq + 1
  call bump
  print *, 'plq3', nplaq - nspace
end

subroutine ferm
  integer niter, nmass, neo, i
  real r
  niter = 20
  nmass = 2
  neo = 2
  r = 1.0
  do i = 1, nmass
    r = r * 0.5
  end do
  print *, 'ferm', niter, nmass, neo, niter / nmass, nmass * neo, niter - neo
  print *, 'frm2', niter + nmass, neo + 1, niter * 2, nmass - 1
  call bump
  print *, 'frm3', niter / neo
end

subroutine hmcstp
  integer nmd, ntraj, nacc0, k
  real dt
  nmd = 12
  ntraj = 5
  nacc0 = 0
  dt = 0.0
  do k = 1, ntraj
    dt = dt + nmd * 0.01
  end do
  print *, 'hmc', nmd, ntraj, nacc0, nmd / ntraj, nmd * ntraj, nmd - ntraj
  print *, 'hmc2', nmd + ntraj, ntraj * 3, nmd - 1, nacc0 + 1
  call bump
  print *, 'hmc3', nmd * 2 - ntraj
end

subroutine wrapup(nf)
  integer nf
  common /acc/ nacc, nrej
  integer nacc, nrej
  print *, 'wrap', nf, nf * 2, nacc, nrej
end
|}

(** [simple] — one huge routine; catastrophic without MOD.

    Paper shape: literal 174 < intraconst 179 < pass-through = polynomial
    183; only 2 constants survive without MOD; intraprocedural 174.

    Construction: a dominant hydrodynamics routine whose many local
    constants all have a harmless bookkeeping call between definition and
    use — with MOD they are all visible, without MOD nearly everything
    dies (only uses before the first call survive).  A few
    locally-computed constant arguments separate intraconst from literal,
    and two formals forwarded to an inner kernel separate pass-through from
    intraconst. *)
let simple =
  {|
program simple
  integer ncycle
  call logini
  ncycle = 2
  call hydro(48, 48, ncycle)
  call conserv(48, 48)
end

subroutine logini
  common /log/ nlog
  integer nlog
  nlog = 0
end

subroutine logit(nval)
  integer nval
  common /log/ nlog
  integer nlog
  nlog = nlog + nval - nval + 1
end

subroutine hydro(jmax, kmax, ncyc)
  integer jmax, kmax, ncyc
  integer j, k, n
  integer nzone, nghost, nstride, nband, nedit, nsub, ncells, nface
  real rho, p, e, q, courant
  nzone = 46
  call logit(nzone)
  nghost = 2
  call logit(nghost)
  nstride = nzone + nghost
  call logit(nstride)
  nband = 4
  call logit(nband)
  nedit = 10
  call logit(nedit)
  nsub = 3
  call logit(nsub)
  ncells = 46 * 46
  call logit(ncells)
  nface = 4
  call logit(nface)
  rho = 1.0
  p = 0.0
  e = 0.0
  q = 0.0
  courant = 0.25
  do n = 1, ncyc
    do k = 1, kmax
      do j = 1, jmax
        p = p + rho * courant
      end do
    end do
    e = e + p / ncells
    q = q + courant * nband
  end do
  print *, 'hyd1', nzone, nghost, nstride, nband
  call logit(nzone)
  print *, 'hyd2', nedit, nsub, ncells, nface
  call logit(nedit)
  print *, 'hyd3', nzone + nghost, nstride * nband, nedit / nsub
  call logit(nsub)
  print *, 'hyd4', ncells / nzone, nface * nband, nsub + nedit
  call logit(nface)
  print *, 'hyd5', nzone - nghost, nband - nsub, nface + nghost
  print *, 'hyd6', nzone * 2, nghost * nband, nstride + nedit
  call logit(nstride)
  print *, 'hyd7', nsub * nface, nedit - nsub, nzone / nghost
  call logit(ncells)
  print *, 'hyd8', ncells - nface, nband + nedit, nstride - nsub
  call eos(nstride, nband)
  call kernel(jmax, kmax)
  call tstep(ncyc)
  print *, e, q
end

subroutine eos(n, m)
  integer n, m, i
  real gamma
  gamma = 1.4
  do i = 1, n
    gamma = gamma + m
  end do
  print *, 'eos', n, m, n * m, n - m
end

subroutine kernel(j, k)
  integer j, k
  print *, 'kern', j + k, j - k, j * 2, k / 2
end

subroutine tstep(n)
  integer n, ndtmin, ndtmax
  ndtmin = 1
  call logit(ndtmin)
  ndtmax = ndtmin * 64
  call logit(ndtmax)
  print *, 'tstep', ndtmin, ndtmax, ndtmax / ndtmin, ndtmax - ndtmin, n
end

subroutine conserv(jmax, kmax)
  integer jmax, kmax, ntot
  ntot = 9
  call logit(ntot)
  print *, 'cons', ntot, ntot * 2, jmax, kmax, jmax * kmax
end
|}
