(** The benchmark suite: one synthetic MiniFort program per benchmark of
    the paper's Table 1, in the paper's order (adm … trfd). *)

type entry = {
  name : string;
  source : string;
  description : string;  (** the paper shape the program is engineered for *)
}

val entries : entry list
val find : string -> entry option
val names : string list

(** Parse and resolve (memoized, so expression ids stay stable). *)
val program : entry -> Ipcp_frontend.Prog.t
