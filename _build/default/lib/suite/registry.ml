(** The benchmark suite: one synthetic MiniFort program per benchmark of the
    paper's test suite (Table 1), in the paper's order. *)

open Ipcp_frontend

type entry = {
  name : string;
  source : string;
  description : string;  (** the paper shape this program is engineered for *)
}

let entries : entry list =
  [
    {
      name = "adm";
      source = Programs_a.adm;
      description = "MOD decisive; all jump functions tie; intra-only close";
    };
    {
      name = "doduc";
      source = Programs_a.doduc;
      description = "literal-rich call sites; intra-only starves; MOD irrelevant";
    };
    {
      name = "fpppp";
      source = Programs_a.fpppp;
      description = "one huge routine; lit < intra < pass = poly; return JFs help";
    };
    {
      name = "linpackd";
      source = Programs_b.linpackd;
      description = "big literal→intraconst gap; pass = intra; MOD matters";
    };
    {
      name = "matrix300";
      source = Programs_b.matrix300;
      description = "lit < intra < pass; pass-through chains; MOD matters";
    };
    {
      name = "mdg";
      source = Programs_b.mdg;
      description = "small spread; return JFs add one; no-MOD ≈ literal";
    };
    {
      name = "ocean";
      source = Programs_c.ocean;
      description =
        "init routine assigns constant globals: return JFs triple the count; \
         complete propagation adds more";
    };
    {
      name = "qcd";
      source = Programs_c.qcd;
      description = "almost everything local: all configurations nearly tie";
    };
    {
      name = "simple";
      source = Programs_c.simple;
      description = "one huge routine; no-MOD catastrophic (local consts span calls)";
    };
    {
      name = "snasa7";
      source = Programs_d.snasa7;
      description = "literal < rest; intra-only ≈ literal";
    };
    {
      name = "spec77";
      source = Programs_d.spec77;
      description = "literal < rest; complete propagation exposes a few more";
    };
    {
      name = "trfd";
      source = Programs_d.trfd;
      description = "tiny; all configurations nearly equal";
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) entries

let names = List.map (fun e -> e.name) entries

(** Parse and resolve a suite program (memoized — resolution allocates fresh
    ids each call, so memoization also keeps ids stable across uses). *)
let resolved : (string, Prog.t) Hashtbl.t = Hashtbl.create 16

let program (e : entry) : Prog.t =
  match Hashtbl.find_opt resolved e.name with
  | Some p -> p
  | None ->
    let p = Sema.parse_and_resolve ~file:e.name e.source in
    Hashtbl.replace resolved e.name p;
    p
