(** Synthetic benchmark programs [snasa7], [spec77] and [trfd]. *)

(** [snasa7] — seven kernels; the literal jump function and the
    intraprocedural baseline tie well below the others.

    Paper shape: literal 254 < intraconst = pass-through = polynomial 336;
    intraprocedural baseline 254.

    Construction: the driver computes every kernel size into a local
    variable and passes the *variable* — there are no literal actuals at
    all, so the literal jump function gains nothing over the purely local
    constants, which are plentiful inside the kernels. *)
let snasa7 =
  {|
program snasa7
  integer n1, n2, n3, n4, n5, n6, n7
  n1 = 128
  n2 = 64
  n3 = 32
  n4 = 256
  n5 = 16
  n6 = 96
  n7 = 50
  n8 = 40
  n9 = 72
  n10 = 90
  n11 = 60
  call mxm(n1)
  call cfft2d(n2)
  call cholsky(n3)
  call btrix(n4)
  call gmtry(n5)
  call emit(n6)
  call vpenta(n7)
  call glrhs(n8)
  call vortex(n9)
  call fftsyn(n10)
  call smooth7(n11)
end

subroutine mxm(n)
  integer n, i, nb, nu
  real c
  nb = 4
  nu = 2
  c = 0.0
  do i = 1, n
    c = c + nb * nu
  end do
  print *, 'mxm', n, nb, nu, nb + nu, n / nb, n - nu
end

subroutine cfft2d(n)
  integer n, i, m, isign
  real tr
  m = 6
  isign = 1
  tr = 0.0
  do i = 1, n
    tr = tr + m
  end do
  print *, 'fft', n, m, isign, m * 2, n / 2, n + m
end

subroutine cholsky(n)
  integer n, j, nmat, nrhs
  real sum
  nmat = 250
  nrhs = 3
  sum = 0.0
  do j = 1, n
    sum = sum + nrhs
  end do
  print *, 'chol', n, nmat, nrhs, nmat / nrhs, n * nrhs, nmat - n
end

subroutine btrix(n)
  integer n, k, jd, kd, ld
  real b
  jd = 30
  kd = 30
  ld = 30
  b = 0.0
  do k = 1, n
    b = b + jd
  end do
  print *, 'btri', n, jd, kd, ld, jd + kd + ld, n - jd
end

subroutine gmtry(n)
  integer n, i, nbody, nwall
  real geo
  nbody = 2
  nwall = 12
  geo = 0.0
  do i = 1, n
    geo = geo + nwall
  end do
  print *, 'gmtr', n, nbody, nwall, nwall / nbody, n * nbody, n + nwall
end

subroutine emit(n)
  integer n, i, nvort
  real gam
  nvort = 40
  gam = 0.0
  do i = 1, n
    gam = gam + nvort
  end do
  print *, 'emit', n, nvort, nvort * 2, n / 4, n - nvort, nvort + 1
end

subroutine vpenta(n)
  integer n, j, nja, njb
  real f
  nja = 10
  njb = 20
  f = 0.0
  do j = 1, n
    f = f + nja + njb
  end do
  print *, 'vpen', n, nja, njb, nja * njb, njb / nja, n + nja
end

subroutine fftsyn(n)
  integer n, i, mlog, nseg
  real acc
  mlog = 7
  nseg = 14
  acc = 0.0
  do i = 1, mlog
    acc = acc + n
  end do
  print *, 'ffts', n, mlog, nseg, nseg / mlog, n / 2, n - nseg, mlog * 4
end

subroutine smooth7(n)
  integer n, k, npass, nhalf
  real w
  npass = 4
  nhalf = npass / 2
  w = 0.0
  do k = 1, npass
    w = w + n * 0.25
  end do
  print *, 'smth', n, npass, nhalf, npass * nhalf, n + npass, n - nhalf
end

subroutine glrhs(n)
  integer n, k, nc, nd
  real g
  nc = 5
  nd = 15
  g = 0.0
  do k = 1, n
    g = g + nc
  end do
  print *, 'glrh', n, nc, nd, nd / nc, nc * nd, n - nd
end

subroutine vortex(n)
  integer n, i, nvor, ncore
  real w
  nvor = 25
  ncore = 5
  w = 0.0
  do i = 1, n
    w = w + ncore
  end do
  print *, 'vort', n, nvor, ncore, nvor / ncore, nvor - ncore, n + nvor
end
|}

(** [spec77] — a weather-code mix: literals, computed constants, and a bit
    of dead code that complete propagation exposes.

    Paper shape: literal 104 < intraconst = pass-through = polynomial 137;
    without MOD 76; complete propagation 141 (+4); intraprocedural 83.

    Construction: a spectral-model driver passing both literal and
    computed-constant arguments; some local constants span harmless calls
    (MOD delta); a branch on a constant configuration flag hides a call
    site with conflicting arguments, so only propagation iterated with
    dead-code elimination gets the callee's constants. *)
let spec77 =
  {|
program spec77
  integer mwave, kdim
  common /flags/ ihemi
  integer ihemi
  call setflg
  mwave = 31
  kdim = 12
  call gloop(mwave, kdim)
  call gwater(mwave)
  if (ihemi .eq. 1) then
    call sicdkp(77, 9)
  end if
  call sicdkp(24, 6)
  call gsidco(31, 12)
  call lnsout(62)
end

subroutine setflg
  common /flags/ ihemi
  integer ihemi
  common /tim/ ncalls
  integer ncalls
  ihemi = 0
  ncalls = 0
end

subroutine gloop(mw, kd)
  integer mw, kd, lat, nlats, ntrunc
  real zg
  nlats = 38
  call clock
  ntrunc = nlats - 7
  call clock
  zg = 0.0
  do lat = 1, nlats
    zg = zg + mw * kd
  end do
  print *, 'gloop', mw, kd, nlats, ntrunc, mw + kd, nlats - ntrunc
  call fft991(ntrunc)
end

subroutine fft991(n)
  integer n, i, nfax
  real work
  nfax = 5
  call clock
  work = 0.0
  do i = 1, n
    work = work + nfax
  end do
  print *, 'fft991', n, nfax, n + nfax, n - nfax
end

subroutine gwater(mw)
  integer mw, ilev, nclds
  real qsat
  nclds = 3
  call clock
  qsat = 0.0
  do ilev = 1, nclds
    qsat = qsat + mw
  end do
  print *, 'gwater', mw, nclds, mw * nclds, mw / nclds
end

subroutine sicdkp(n, m)
  integer n, m, k
  real del
  del = 0.0
  do k = 1, m
    del = del + n
  end do
  print *, 'sicdkp', n, m, n / m, n - m
end

subroutine gsidco(mw, kd)
  integer mw, kd, ncof, lat
  real p
  ncof = 18
  call clock
  p = 0.0
  do lat = 1, kd
    p = p + mw
  end do
  print *, 'gsidco', mw, kd, ncof, ncof / kd, mw - ncof, ncof + 1
end

subroutine lnsout(n)
  integer n, nrec
  nrec = 7
  call clock
  print *, 'lnsout', n, nrec, n + nrec, n / nrec
end

subroutine clock
  common /tim/ ncalls
  integer ncalls
  ncalls = ncalls + 1
end
|}

(** [trfd] — the smallest member of the suite.

    Paper shape: 16 constants under every jump function; the
    intraprocedural baseline finds 15.

    Construction: two tiny integral-transformation routines with local
    constants and a single literal argument providing the one
    interprocedural constant. *)
let trfd =
  {|
program trfd
  call intgrl(10)
  call trnfor
end

subroutine trfblk
  common /tm/ nticks
  integer nticks
  data nticks /0/
end

subroutine tstamp(nval)
  integer nval
  common /tm/ nticks
  integer nticks
  nticks = nticks + nval - nval + 1
end

subroutine intgrl(norb)
  integer norb, i, npass
  real v
  npass = 2
  v = 0.0
  do i = 1, npass
    v = v + norb
  end do
  print *, 'intgrl', norb, npass, norb * npass, norb + npass, norb - 1
end

subroutine trnfor
  integer morb, nrec, j
  real x
  morb = 8
  call tstamp(morb)
  nrec = 4
  x = 0.0
  do j = 1, nrec
    x = x + morb
  end do
  print *, 'trnfor', morb, nrec, morb / nrec, morb + nrec, nrec * 2, morb - nrec
end
|}
