(** Synthetic benchmark programs [adm], [doduc] and [fpppp].

    Each program mirrors the *structural causes* the paper names for its
    namesake's behaviour in Tables 2 and 3 (see DESIGN.md).  The absolute
    substitution counts differ from the paper's — these are synthetic
    programs, not the SPEC/PERFECT sources — but the orderings between
    configurations are engineered to match. *)

(** [adm] — MOD information is decisive; all four jump functions tie.

    Paper shape: 110 constants under every jump function; only 25 without
    MOD; 105 with intraprocedural propagation alone.

    Construction: procedures hold many *local* integer constants whose
    definitions and uses are separated by calls to harmless service
    routines.  With MOD summaries the calls kill nothing and nearly every
    constant is already visible intraprocedurally; without MOD each call is
    a barrier and almost everything dies.  The few interprocedural constants
    arrive as literals at call sites, so even the literal jump function
    catches them. *)
let adm =
  {|
program adm
  integer nx, hours, i
  real flux
  call clkini
  nx = 16
  hours = 24
  flux = 0.0
  call emit(24, 6)
  do i = 1, hours
    call advect(16, 16, 4)
    call diffuse(16, 16, 4)
    call chem(6, 12)
    call settle(16, 16)
  end do
  call wetdep(16, 16, 4)
  call drydep(16, 16)
  print *, nx
  call report
end

subroutine clkini
  common /clock/ nticks
  integer nticks
  nticks = 0
end

subroutine emit(nsrc, nspec)
  integer nsrc, nspec, i, j, base, scale
  real q
  common /srcs/ sq
  real sq(64)
  base = 100
  call tick(base)
  scale = base / 4
  call tick(scale)
  q = 0.0
  do i = 1, nsrc
    do j = 1, nspec
      q = q + scale
    end do
    sq(i) = q
  end do
  call tick(base)
  i = base + scale
  print *, 'emit', i, base - scale, nsrc, nspec
end

subroutine advect(nx, ny, nl)
  integer nx, ny, nl, i, j, k, cfl, istep
  real u, v
  common /wind/ wu, wv
  real wu, wv
  cfl = 2
  call tick(cfl)
  istep = cfl * 3
  call tick(istep)
  wu = 1.5
  wv = 0.5
  u = wu
  v = wv
  do k = 1, nl
    do j = 1, ny
      do i = 1, nx
        u = u + v / istep
      end do
    end do
  end do
  call tick(istep)
  print *, 'advect', istep + cfl, istep - cfl, istep * cfl, nx, ny
end

subroutine diffuse(nx, ny, nl)
  integer nx, ny, nl, i, k, order, niter, half
  real kh
  order = 4
  call tick(order)
  niter = order - 1
  call tick(niter)
  half = order / 2
  call tick(half)
  kh = 0.1
  do k = 1, nl
    do i = 1, nx * ny
      kh = kh + niter
    end do
  end do
  call tick(order)
  print *, 'diffuse', order * niter, order + half, niter - half, nx, nl
end

subroutine chem(nspec, nreact)
  integer nspec, nreact, i, j, nfast, nslow, nph
  real conc
  nfast = 8
  call tick(nfast)
  nslow = nfast / 2
  call tick(nslow)
  nph = nfast + nslow
  call tick(nph)
  conc = 0.0
  do i = 1, nspec
    do j = 1, nreact
      conc = conc + nfast * 0.01
    end do
  end do
  call tick(nph)
  print *, 'chem', nfast, nslow, nph, nfast - nslow, nspec, nreact
  print *, 'chem2', nph * 2, nslow + 1, nspec * nreact
end

subroutine settle(nx, ny)
  integer nx, ny, i, nsize, nbin
  real vel
  nsize = 12
  call tick(nsize)
  nbin = nsize / 3
  call tick(nbin)
  vel = 0.0
  do i = 1, nx
    vel = vel + nbin * 0.1
  end do
  call tick(nsize)
  print *, 'settle', nsize, nbin, nsize - nbin, nsize + nbin, nx, ny
end

subroutine wetdep(nx, ny, nl)
  integer nx, ny, nl, k, nrain, nhail
  real scav
  nrain = 7
  call tick(nrain)
  nhail = nrain - 5
  call tick(nhail)
  scav = 0.0
  do k = 1, nl
    scav = scav + nrain
  end do
  call tick(nrain)
  print *, 'wetdep', nrain, nhail, nrain * nhail, nx + ny, nl
  print *, 'wetdp2', nrain + 2, nhail * 3
end

subroutine drydep(nx, ny)
  integer nx, ny, nveg, nsoil
  nveg = 5
  call tick(nveg)
  nsoil = nveg * 2
  call tick(nsoil)
  print *, 'drydep', nveg, nsoil, nveg + nsoil, nsoil - nveg, nx * ny
end

subroutine tick(nval)
  integer nval
  common /clock/ nticks
  integer nticks
  nticks = nticks + nval - nval + 1
end

subroutine report
  common /clock/ nt
  integer nt
  print *, 'ticks', nt
end
|}

(** [doduc] — nearly everything is a literal constant at some call site.

    Paper shape: literal 288 vs. 289 for the other jump functions; losing
    return jump functions costs 2; losing MOD barely matters; the
    intraprocedural baseline finds almost nothing (3).

    Construction: a tree of small routines, each invoked from exactly one
    site with literal actuals that are then used many times (no conflicting
    sites, few interfering calls, almost no local integer constants).  One
    argument is a locally computed constant (intraconst gains 1 over
    literal) and one out-parameter needs a return jump function (2 uses). *)
let doduc =
  {|
program doduc
  integer nret, nloc
  call pipe1(8, 3)
  call pipe2(12, 5)
  call pipe3(6, 2)
  nloc = 14 / 2
  call pipe4(nloc)
  call pipe5(9, 4)
  call pipe6(20, 10)
  call pipe7(15, 3)
  call pipe8(18, 6)
  call pipe9(28, 7)
  call probe(nret)
  call consume(nret)
end

subroutine pipe1(n, m)
  integer n, m, i
  real acc
  acc = 0.0
  do i = 1, n
    acc = acc + m * i + n
  end do
  print *, 'p1', n + m, n - m, n * m, n / m
  call stage1a(8, 3)
end

subroutine stage1a(n, m)
  integer n, m
  print *, 's1a', n / m, n + 2 * m, n - m
  call stage2a(8, 3)
end

subroutine stage2a(n, q)
  integer n, q
  print *, 's2a', n * q, q - n, q + q, n + n
end

subroutine pipe2(n, m)
  integer n, m, i
  real acc
  acc = 1.0
  do i = 1, m
    acc = acc * n
  end do
  print *, 'p2', n + m, n * 2, m * 3, n - m
  call stage1b(12, 5)
end

subroutine stage1b(n, m)
  integer n, m
  print *, 's1b', n * m, n / m, n + m
end

subroutine pipe3(n, m)
  integer n, m
  print *, 'p3', n - m, n + m, n * m, n / m
  call stage3(6, 2)
end

subroutine stage3(a, b)
  integer a, b
  print *, 's3', a + b, a - b, a * b, a / b, a + 2 * b, a - 2 * b
end

subroutine pipe4(k)
  integer k
  print *, 'p4', k + 1, k * 2, k - 3, k / 7
end

subroutine pipe5(n, m)
  integer n, m
  print *, 'p5', n + m, n - m, n * m, n / m, n + 2 * m
  call stage5a(9, 4)
  call stage5b(9, 4)
end

subroutine stage5a(n, m)
  integer n, m
  print *, 's5a', n * m, n + m, n - m, n / m
end

subroutine stage5b(n, m)
  integer n, m
  print *, 's5b', n + 3 * m, n * 2 - m, n + n + m
end

subroutine pipe6(n, m)
  integer n, m
  print *, 'p6', n / m, n - m, n + m, n * m, n - 2 * m
  call stage6a(20, 10)
end

subroutine stage6a(n, m)
  integer n, m
  print *, 's6a', n - m, n + m, n / m, n * m, m * 3, n * 2
  call stage6b(20, 10)
end

subroutine stage6b(n, m)
  integer n, m
  print *, 's6b', n + m + 1, n - m - 1, n * m / 4
end

subroutine pipe7(n, m)
  integer n, m, i
  real heat
  heat = 0.0
  do i = 1, m
    heat = heat + n * 0.5
  end do
  print *, 'p7', n + m, n - m, n * m, n / m, n + 2 * m, n - 2 * m
  call stage7a(15, 3)
  call stage7b(15, 3)
end

subroutine stage7a(n, m)
  integer n, m
  print *, 's7a', n * m, n + m, n / m, n - m, m * m
end

subroutine stage7b(n, m)
  integer n, m
  print *, 's7b', n + m + 1, n * 2, m * 5, n - m - 2
  call stage7c(15, 3)
end

subroutine stage7c(n, m)
  integer n, m
  print *, 's7c', n / m - 1, n * m + 2, n + 4 * m
end

subroutine pipe8(n, m)
  integer n, m
  print *, 'p8', n / m, n * m, n + m, n - m, n + n, m + m
  call stage8a(18, 6)
end

subroutine stage8a(n, m)
  integer n, m
  print *, 's8a', n - 2 * m, n + 3 * m, n * 2 - m, n / m + 1
  call stage8b(18, 6)
end

subroutine stage8b(n, m)
  integer n, m
  print *, 's8b', n * m / 9, n + m - 4, m * 7 - n
end

subroutine pipe9(n, m)
  integer n, m, i
  real cool
  cool = 1.0
  do i = 1, m
    cool = cool * 0.9
  end do
  print *, 'p9', n + m, n - m, n * m, n / m, n * 3, m * 4
  call stage9a(28, 7)
end

subroutine stage9a(n, m)
  integer n, m
  print *, 's9a', n / m, n - m, n + m, n * 2 + m, n - 3 * m
end

subroutine probe(out)
  integer out
  out = 17
end

subroutine consume(v)
  integer v
  print *, 'c', v + 1, v * 2
end
|}

(** [fpppp] — a single huge routine dominates; modest spread between jump
    functions.

    Paper shape: literal 49 < intraconst 54 < pass-through = polynomial 60;
    without return jump functions 56; without MOD 34; intraprocedural 38.

    Construction: one long routine ([twoel]) with many local constants
    (giving the intraprocedural baseline a decent score), some literal call
    arguments, locally-computed constant arguments (intraconst > literal),
    formals forwarded to helpers (pass-through > intraconst), and two
    out-parameters whose values only return jump functions recover. *)
let fpppp =
  {|
program fpppp
  integer nbasis, nshell
  nbasis = 30
  nshell = 10
  call twoel(nbasis, nshell)
  call final(6)
end

subroutine twoel(nb, ns)
  integer nb, ns, i, j, k, l
  integer mmax, kount, nij, nkl, lim1, lim2
  real gout, val, t1, t2
  common /pk/ pkx, pky
  integer pkx, pky
  mmax = 8
  kount = 0
  gout = 0.0
  nij = mmax * 2
  call setpk
  lim1 = 5
  nkl = lim1 + 3
  val = 0.0
  do i = 1, nb
    do j = 1, ns
      val = val + nij
      kount = kount + 1
    end do
  end do
  t1 = val
  lim2 = lim1 * 2
  do k = 1, nkl
    do l = 1, lim2
      gout = gout + t1 / nkl
    end do
  end do
  t2 = gout
  print *, 'twoel', mmax, nij, nkl, lim1, lim2, kount
  print *, 'pk', pkx, pky, pkx + pky
  print *, 'tw2', mmax * 2, nij + nkl, lim1 + lim2, mmax - lim1
  print *, 'tw3', nij / mmax, lim2 - lim1, nkl * lim1
  call shellq(nij, mmax)
  call xyzint(lim1, lim2, nkl)
  call basis(nb, ns)
  call norms(nb, ns)
  call fmgen(4)
  call dgemmq(16, 8)
  print *, t2
end

subroutine setpk
  common /pk/ px, py
  integer px, py
  px = 3
  py = 9
end

subroutine shellq(n, m)
  integer n, m, i
  real s
  s = 0.0
  do i = 1, n
    s = s + m
  end do
  print *, 'shellq', n + m, n - m
end

subroutine xyzint(l1, l2, nk)
  integer l1, l2, nk
  print *, 'xyzint', l1 * l2, nk + l1, l2 - l1
end

subroutine basis(n, m)
  integer n, m
  print *, 'basis', n + m, n - m, n / m
end

subroutine fmgen(npts)
  integer npts, i
  real f
  f = 1.0
  do i = 1, npts
    f = f * 0.5
  end do
  print *, 'fmgen', npts * 2
end

subroutine norms(n, m)
  integer n, m, i
  real z
  z = 0.0
  do i = 1, m
    z = z + n
  end do
  print *, 'norms', n * 2, n + m, n - m, n / m
end

subroutine dgemmq(n, m)
  integer n, m, i, nblk
  real acc
  nblk = 4
  acc = 0.0
  do i = 1, n
    acc = acc + m * nblk
  end do
  print *, 'dgemmq', n, m, nblk, n / nblk, m * nblk, n - m
end

subroutine final(n)
  integer n
  print *, 'final', n * n
end
|}
