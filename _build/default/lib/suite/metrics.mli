(** Program characteristics — the paper's Table 1. *)

type characteristics = {
  name : string;
  lines : int;  (** non-blank, non-comment source lines *)
  procedures : int;
  call_sites : int;
  mean_lines : float;  (** per procedure *)
  median_lines : int;
}

val characteristics : Registry.entry -> characteristics
val table1 : unit -> characteristics list
val pp_table1 : unit Fmt.t
