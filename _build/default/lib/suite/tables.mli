(** Regeneration harness for the paper's Tables 2 and 3: the substitution
    counts of every analyzer configuration on every suite program. *)

type table2_row = {
  t2_name : string;
  ret_poly : int;
  ret_pass : int;
  ret_intra : int;
  ret_lit : int;
  noret_poly : int;
  noret_pass : int;
}

type table3_row = {
  t3_name : string;
  poly_no_mod : int;
  poly_mod : int;
  complete : int;
  intra_only : int;
}

val table2_row : Registry.entry -> table2_row
val table3_row : Registry.entry -> table3_row
val table2 : unit -> table2_row list
val table3 : unit -> table3_row list

val pp_table2 : table2_row list Fmt.t
val pp_table3 : table3_row list Fmt.t

(** Tables 1, 2 and 3, formatted like the paper's evaluation section. *)
val pp_all : unit Fmt.t
