lib/suite/workload.ml: Array Buffer Ipcp_frontend Ipcp_support List Option Printf Prng String
