lib/suite/programs_a.ml:
