lib/suite/programs_c.ml:
