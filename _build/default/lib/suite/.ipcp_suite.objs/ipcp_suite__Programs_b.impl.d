lib/suite/programs_b.ml:
