lib/suite/programs_d.ml:
