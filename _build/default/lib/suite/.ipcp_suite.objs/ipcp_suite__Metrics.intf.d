lib/suite/metrics.mli: Fmt Registry
