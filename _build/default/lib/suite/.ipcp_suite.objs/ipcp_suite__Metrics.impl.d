lib/suite/metrics.ml: Fmt Ipcp_frontend Ipcp_support List Prog Registry String
