lib/suite/workload.mli: Ipcp_frontend
