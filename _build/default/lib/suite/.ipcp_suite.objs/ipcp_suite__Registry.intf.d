lib/suite/registry.mli: Ipcp_frontend
