lib/suite/tables.ml: Complete Config Driver Fmt Ipcp_core Ipcp_engine Jump_function List Metrics Registry Substitute
