lib/suite/tables.ml: Complete Config Fmt Ipcp_core Jump_function List Metrics Registry Substitute
