lib/suite/registry.ml: Hashtbl Ipcp_frontend List Prog Programs_a Programs_b Programs_c Programs_d Sema
