lib/suite/tables.mli: Fmt Registry
