lib/suite/tables.mli: Fmt Ipcp_core Registry
