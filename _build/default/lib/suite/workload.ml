(** Random MiniFort program generator.

    Used by the property-based tests (jump-function hierarchy, soundness
    against the interpreter, substitution behaviour-preservation) and by the
    benchmark sweeps (solver cost vs. program size).

    Generated programs are, by construction:
    - *valid*: they resolve without errors;
    - *terminating*: the call graph is acyclic (a procedure only calls
      higher-numbered procedures) and all loops have small literal-ish
      bounds;
    - *initialized*: every variable is assigned before any use, and the
      main program initializes every common global first — so the reference
      interpreter never faults on them.

    The [spec] knobs control how constants flow to call sites: literal
    arguments, locally-computed constants, forwarded formals
    (pass-through), polynomials of formals, and globals. *)

open Ipcp_support

type spec = {
  seed : int;
  num_procs : int;  (** callable procedures besides the main program *)
  num_globals : int;  (** scalar integer commons in one block *)
  max_formals : int;
  max_locals : int;
  stmts_per_proc : int;
  p_call : float;  (** probability a statement slot becomes a call *)
  p_branch : float;
  p_loop : float;
  p_literal_arg : float;  (** literal constant actual *)
  p_const_arg : float;  (** locally-computed constant variable actual *)
  p_passthrough_arg : float;  (** forwarded formal actual *)
  p_poly_arg : float;  (** formal-plus-constant polynomial actual *)
  p_global_write : float;  (** probability a procedure writes a global *)
  p_out_param : float;  (** probability a procedure sets its last formal *)
}

let default_spec =
  {
    seed = 1;
    num_procs = 6;
    num_globals = 3;
    max_formals = 3;
    max_locals = 4;
    stmts_per_proc = 8;
    p_call = 0.5;
    p_branch = 0.25;
    p_loop = 0.25;
    p_literal_arg = 0.4;
    p_const_arg = 0.25;
    p_passthrough_arg = 0.2;
    p_poly_arg = 0.15;
    p_global_write = 0.3;
    p_out_param = 0.3;
  }

type proc_shape = {
  ps_name : string;
  ps_formals : string list;
  ps_out_param : bool;  (** last formal is written *)
}

let global_name i = Printf.sprintf "ng%d" (i + 1)

let buf_add = Buffer.add_string

(* An integer expression over the given readable variables; never divides
   (avoiding divide-by-zero in generated programs). *)
let rec gen_expr rng depth vars : string =
  if depth <= 0 || vars = [] || Prng.chance rng 0.4 then
    if vars <> [] && Prng.chance rng 0.6 then Prng.choose rng vars
    else string_of_int (Prng.range rng 0 20)
  else
    let a = gen_expr rng (depth - 1) vars in
    let b = gen_expr rng (depth - 1) vars in
    let op = Prng.choose rng [ " + "; " - "; " * " ] in
    Printf.sprintf "(%s%s%s)" a op b

let gen_cond rng vars : string =
  let a = gen_expr rng 1 vars in
  let b = gen_expr rng 1 vars in
  let op = Prng.choose rng [ " .lt. "; " .le. "; " .gt. "; " .ge. "; " .eq. "; " .ne. " ] in
  a ^ op ^ b

(* Choose an actual argument for a call, mixing the spec's categories. *)
let gen_arg rng spec ~formals ~const_locals ~vars : string =
  let pick =
    let r = Prng.chance rng in
    if r spec.p_literal_arg then `Literal
    else if const_locals <> [] && r spec.p_const_arg then `Const
    else if formals <> [] && r spec.p_passthrough_arg then `Pass
    else if formals <> [] && r spec.p_poly_arg then `Poly
    else `Any
  in
  match pick with
  | `Literal -> string_of_int (Prng.range rng 0 30)
  | `Const -> Prng.choose rng const_locals
  | `Pass -> Prng.choose rng formals
  | `Poly ->
    Printf.sprintf "%s + %d" (Prng.choose rng formals) (Prng.range rng 1 5)
  | `Any ->
    if vars <> [] && Prng.chance rng 0.5 then Prng.choose rng vars
    else string_of_int (Prng.range rng 0 30)

(* Emit the body of one procedure. *)
let gen_body buf rng spec ~self_index ~(shapes : proc_shape array)
    ~(formals : string list) ~out_param =
  let n_locals = Prng.range rng 1 (max 1 spec.max_locals) in
  let locals = List.init n_locals (fun i -> Printf.sprintf "lv%d" (i + 1)) in
  (* implicit typing makes lv* real; declare them integer *)
  buf_add buf
    (Printf.sprintf "  integer %s\n" (String.concat ", " locals));
  let globals = List.init spec.num_globals global_name in
  if spec.num_globals > 0 then
    buf_add buf
      (Printf.sprintf "  common /gc/ %s\n" (String.concat ", " globals));
  (* initialize all locals up front so every later use is defined *)
  let const_locals = ref [] in
  List.iteri
    (fun i lv ->
      if i < 2 && Prng.chance rng 0.7 then begin
        (* a locally-computed constant *)
        buf_add buf (Printf.sprintf "  %s = %d\n" lv (Prng.range rng 1 50));
        const_locals := lv :: !const_locals
      end
      else
        buf_add buf
          (Printf.sprintf "  %s = %s\n" lv
             (gen_expr rng 1 (formals @ globals))))
    locals;
  let vars = formals @ locals @ globals in
  let callees =
    Array.to_list shapes
    |> List.filteri (fun i _ -> i > self_index)
  in
  let emit_call indent =
    match callees with
    | [] ->
      buf_add buf
        (Printf.sprintf "%sprint *, %s\n" indent (gen_expr rng 1 vars))
    | _ ->
      let callee = Prng.choose rng callees in
      (* FORTRAN's anti-aliasing rule: the storage behind a modified actual
         must not be reachable through another argument or a common block.
         So the out-parameter is always a local, is chosen up front, and is
         excluded from every other argument position; globals are never
         passed as bare by-reference actuals. *)
      let out_var =
        if callee.ps_out_param then Some (Prng.choose rng locals) else None
      in
      let safe_locals =
        List.filter (fun l -> Some l <> out_var) locals
      in
      let arg_vars = formals @ safe_locals in
      let args =
        List.mapi
          (fun i _ ->
            if callee.ps_out_param && i = List.length callee.ps_formals - 1
            then Option.get out_var
            else
              gen_arg rng spec ~formals ~const_locals:
                (List.filter (fun l -> Some l <> out_var) !const_locals)
                ~vars:arg_vars)
          callee.ps_formals
      in
      if args = [] then
        buf_add buf (Printf.sprintf "%scall %s\n" indent callee.ps_name)
      else
        buf_add buf
          (Printf.sprintf "%scall %s(%s)\n" indent callee.ps_name
             (String.concat ", " args))
  in
  (* [banned] holds active do-variables: FORTRAN forbids redefining them *)
  let emit_simple ?(banned = []) indent =
    let assignable = List.filter (fun l -> not (List.mem l banned)) locals in
    let r = Prng.int rng 3 in
    if r = 0 || assignable = [] then
      buf_add buf
        (Printf.sprintf "%sprint *, %s\n" indent (gen_expr rng 1 vars))
    else if r = 1 && spec.num_globals > 0 && Prng.chance rng spec.p_global_write
    then
      buf_add buf
        (Printf.sprintf "%s%s = %s\n" indent (Prng.choose rng globals)
           (gen_expr rng 1 vars))
    else
      buf_add buf
        (Printf.sprintf "%s%s = %s\n" indent (Prng.choose rng assignable)
           (gen_expr rng 1 vars))
  in
  for _ = 1 to spec.stmts_per_proc do
    if Prng.chance rng spec.p_call then emit_call "  "
    else if Prng.chance rng spec.p_branch then begin
      buf_add buf (Printf.sprintf "  if (%s) then\n" (gen_cond rng vars));
      emit_simple "    ";
      if Prng.bool rng then emit_call "    ";
      if Prng.bool rng then begin
        buf_add buf "  else\n";
        emit_simple "    "
      end;
      buf_add buf "  end if\n"
    end
    else if Prng.chance rng spec.p_loop then begin
      let lv = Prng.choose rng locals in
      buf_add buf
        (Printf.sprintf "  do %s = 1, %d\n" lv (Prng.range rng 1 4));
      emit_simple ~banned:[ lv ] "    ";
      buf_add buf "  end do\n"
    end
    else emit_simple "  "
  done;
  if out_param then begin
    let last = List.nth formals (List.length formals - 1) in
    buf_add buf
      (Printf.sprintf "  %s = %s\n" last
         (if Prng.chance rng 0.6 then string_of_int (Prng.range rng 1 40)
          else gen_expr rng 1 (formals @ !const_locals)))
  end;
  buf_add buf (Printf.sprintf "  print *, %s\n" (gen_expr rng 1 vars))

(** Generate a complete MiniFort program (as source text). *)
let generate (spec : spec) : string =
  let rng = Prng.create spec.seed in
  let shapes =
    Array.init spec.num_procs (fun i ->
        let n_formals =
          (* the last procedures are leaves and take at least one formal so
             constants have somewhere to land *)
          Prng.range rng 1 (max 1 spec.max_formals)
        in
        let formals = List.init n_formals (fun j -> Printf.sprintf "ka%d" (j + 1)) in
        {
          ps_name = Printf.sprintf "proc%d" (i + 1);
          ps_formals = formals;
          ps_out_param = Prng.chance rng spec.p_out_param;
        })
  in
  let buf = Buffer.create 4096 in
  (* main program: initialize globals, then call into the tree *)
  buf_add buf "program genmain\n";
  let globals = List.init spec.num_globals global_name in
  if spec.num_globals > 0 then
    buf_add buf (Printf.sprintf "  common /gc/ %s\n" (String.concat ", " globals));
  buf_add buf "  integer lv1, lv2\n";
  (* globals are initialized either by assignment or by a load-time data
     statement — both paths must hold up under analysis *)
  let assigned, data_initialized =
    List.partition (fun _ -> Prng.chance rng 0.7) globals
  in
  List.iter
    (fun g ->
      buf_add buf
        (Printf.sprintf "  data %s /%d/\n" g (Prng.range rng 0 9)))
    data_initialized;
  List.iter
    (fun g -> buf_add buf (Printf.sprintf "  %s = %d\n" g (Prng.range rng 0 9)))
    assigned;
  buf_add buf "  lv1 = 7\n";
  buf_add buf "  lv2 = 3\n";
  let main_calls = max 1 (spec.num_procs / 2) in
  for _ = 1 to main_calls do
    if Array.length shapes > 0 then begin
      let callee = shapes.(Prng.int rng (Array.length shapes)) in
      let out_var =
        if callee.ps_out_param then
          Some (if Prng.bool rng then "lv1" else "lv2")
        else None
      in
      let safe = List.filter (fun v -> Some v <> out_var) [ "lv1"; "lv2" ] in
      let args =
        List.mapi
          (fun i _ ->
            if callee.ps_out_param && i = List.length callee.ps_formals - 1
            then Option.get out_var
            else gen_arg rng spec ~formals:[] ~const_locals:safe ~vars:safe)
          callee.ps_formals
      in
      if args = [] then buf_add buf (Printf.sprintf "  call %s\n" callee.ps_name)
      else
        buf_add buf
          (Printf.sprintf "  call %s(%s)\n" callee.ps_name
             (String.concat ", " args))
    end
  done;
  buf_add buf "  print *, lv1, lv2\n";
  buf_add buf "end\n\n";
  Array.iteri
    (fun i shape ->
      buf_add buf
        (Printf.sprintf "subroutine %s(%s)\n" shape.ps_name
           (String.concat ", " shape.ps_formals));
      buf_add buf
        (Printf.sprintf "  integer %s\n" (String.concat ", " shape.ps_formals));
      gen_body buf rng spec ~self_index:i ~shapes ~formals:shape.ps_formals
        ~out_param:shape.ps_out_param;
      buf_add buf "end\n\n")
    shapes;
  Buffer.contents buf

(** Generate and resolve; exposed for tests and benches. *)
let generate_resolved (spec : spec) : Ipcp_frontend.Prog.t =
  Ipcp_frontend.Sema.parse_and_resolve ~file:"<generated>" (generate spec)
