(** Synthetic benchmark programs [linpackd], [matrix300] and [mdg]. *)

(** [linpackd] — a large gap between the literal and intraprocedural
    constant jump functions; pass-through adds nothing.

    Paper shape: literal 94 < intraconst = pass-through = polynomial 170;
    without MOD 33; intraprocedural baseline 74.

    Construction: the driver computes its problem sizes into locals and
    passes the *variables* (invisible to the literal jump function, visible
    to intraconst); inner call sites pass locally recomputed constants
    rather than forwarding formals (so pass-through gains nothing).  Local
    constants inside the solvers keep the intraprocedural baseline healthy,
    and harmless bookkeeping calls between their defs and uses make MOD
    information essential. *)
let linpackd =
  {|
program linpackd
  integer n, lda, ntimes, i
  call statz
  n = 100
  lda = 201
  ntimes = 4
  call dgefa(n, lda)
  do i = 1, ntimes
    call dgesl(n, lda)
  end do
  call dmxpy(n)
  call dtrsl(n, lda)
  call dpodi(n)
  call epslon(lda)
  print *, 'done', n, lda
end

subroutine statz
  common /stats/ nops, nswaps
  integer nops, nswaps
  nops = 0
  nswaps = 0
end

subroutine dgefa(n, lda)
  integer n, lda, j, k, kb, nm1, info
  real t, pivot
  nm1 = 100 - 1
  call countop(nm1)
  info = 0
  pivot = 1.0
  t = 0.0
  do k = 1, nm1
    call countop(info)
    do j = k, n
      t = t + pivot / lda
    end do
  end do
  kb = 100
  call countop(kb)
  call idamax(kb)
  call dscal(99)
  print *, 'dgefa', nm1, kb, info, n + lda
end

subroutine dgesl(n, lda)
  integer n, lda, k, nm1, job
  real t
  job = 0
  call countop(job)
  nm1 = 100 - 1
  call countop(nm1)
  t = 0.0
  do k = 1, nm1
    t = t + k * 1.0 / lda
  end do
  call daxpy(100)
  call ddot(99)
  print *, 'dgesl', job, nm1, n - lda
end

subroutine daxpy(n)
  integer n, i, incx
  real dy
  incx = 1
  call countop(incx)
  dy = 0.0
  do i = 1, n
    dy = dy + incx
  end do
  print *, 'daxpy', incx, n
end

subroutine ddot(n)
  integer n, i, incy
  real s
  incy = 1
  call countop(incy)
  s = 0.0
  do i = 1, n
    s = s + incy
  end do
  print *, 'ddot', incy + 1, n
end

subroutine dscal(n)
  integer n, i, mfive
  real da
  mfive = 5
  call countop(mfive)
  da = 2.0
  do i = 1, n
    da = da * 0.99
  end do
  print *, 'dscal', mfive * 4, n
end

subroutine idamax(n)
  integer n, itemp
  itemp = 1
  call countop(itemp)
  print *, 'idamax', itemp, n / 2
end

subroutine dmxpy(n)
  integer n, jmin
  jmin = 2
  call countop(jmin)
  print *, 'dmxpy', jmin * 8, jmin + 1, n
end

subroutine dtrsl(n, lda)
  integer n, lda, j, job, ncase
  real temp
  job = 10
  call countop(job)
  ncase = job / 2
  call countop(ncase)
  temp = 0.0
  do j = 1, ncase
    temp = temp + n * 1.0 / lda
  end do
  call countop(job)
  print *, 'dtrsl', job, ncase, job - ncase, job + ncase, n - lda
end

subroutine dpodi(n)
  integer n, k, jobdet, nupper
  real det
  jobdet = 11
  call countop(jobdet)
  nupper = jobdet - 4
  call countop(nupper)
  det = 1.0
  do k = 1, nupper
    det = det * 0.5
  end do
  call countop(jobdet)
  print *, 'dpodi', jobdet, nupper, jobdet * nupper, jobdet / nupper, n
end

subroutine epslon(lda)
  integer lda, nbase, ndigit
  nbase = 2
  call countop(nbase)
  ndigit = nbase * 26
  call countop(ndigit)
  print *, 'epslon', nbase, ndigit, ndigit / nbase, ndigit - nbase, lda
end

subroutine countop(nval)
  integer nval
  common /stats/ nops, nswaps
  integer nops, nswaps
  nops = nops + nval - nval + 1
end
|}

(** [matrix300] — pass-through chains beat the intraprocedural constant
    jump function.

    Paper shape: literal 71 < intraconst 122 < pass-through = polynomial
    138; without MOD 18; intraprocedural baseline 69.

    Construction: the driver computes the matrix order into a local and
    passes the variable down a chain sgemm → sgemv → saxpy that forwards its
    formal; intraconst only reaches the first hop, pass-through reaches all
    of them.  Locals with interleaved harmless calls make MOD decisive. *)
let matrix300 =
  {|
program matrix300
  integer n, i, reps
  call prof0
  n = 300
  reps = 2
  do i = 1, reps
    call sgemm(n, 1)
  end do
  print *, 'order', n, reps
end

subroutine prof0
  common /prof/ ncalls
  integer ncalls
  ncalls = 0
end

subroutine profup(nval)
  integer nval
  common /prof/ ncalls
  integer ncalls
  ncalls = ncalls + nval - nval + 1
end

subroutine sgemm(n, job)
  integer n, job, j, lead, blk
  real alpha
  lead = 301
  call profup(lead)
  blk = lead - 1
  call profup(blk)
  alpha = 1.0
  do j = 1, n
    alpha = alpha + job
  end do
  print *, 'sgemm', lead, blk, job, blk / 3
  call sgemv(n, job)
end

subroutine sgemv(m, job)
  integer m, job, i, unit
  real beta
  unit = 1
  call profup(unit)
  beta = 0.0
  do i = 1, m
    beta = beta + unit
  end do
  print *, 'sgemv', unit, unit + job, m - 1
  call saxpy(m)
end

subroutine saxpy(n)
  integer n, inc
  inc = 1
  call profup(inc)
  print *, 'saxpy', inc, n + inc, n * 2, n - inc
  call sdot(n)
end

subroutine sdot(n)
  integer n, istep
  istep = 2
  call profup(istep)
  print *, 'sdot', istep, n / istep, n + istep, n - istep
  call sscal(n)
end

subroutine sscal(n)
  integer n, nfact
  nfact = 3
  call profup(nfact)
  print *, 'sscal', nfact, n * nfact, n + nfact
end
|}

(** [mdg] — small spread between jump functions; one constant needs a
    return jump function.

    Paper shape: literal 31 < intraconst 40 < pass-through = polynomial 41;
    without return jump functions 40; without MOD ≈ literal;
    intraprocedural ≈ literal.

    Construction: molecular-dynamics-flavoured driver passing a mix of
    literals and locally-computed constants; one forwarding chain gives
    pass-through its single extra substitution; one out-parameter
    initialization needs a return jump function. *)
let mdg =
  {|
program mdg
  integer nmol, nstep
  common /cnst/ natmo
  integer natmo
  call mdinit
  nmol = 8 * 43
  nstep = 10
  call predic(nmol, 3)
  call correc(nmol, nstep)
  call interf(nmol)
  call poteng(nstep, 3)
  call kineti(natmo)
end

subroutine mdinit
  common /cnst/ nat
  integer nat
  nat = 3
end

subroutine predic(n, ord)
  integer n, ord, i, nvar
  real x
  nvar = 9
  call bound
  x = 0.0
  do i = 1, n
    x = x + ord * nvar
  end do
  print *, 'predic', nvar, nvar + ord, ord * 2, n
end

subroutine correc(n, nsteps)
  integer n, nsteps, i, k
  real e
  k = 4
  call bound
  e = 0.0
  do i = 1, nsteps
    e = e + k
  end do
  print *, 'correc', k, k + 1, n / 2, nsteps
  call intraf(n)
end

subroutine intraf(nm)
  integer nm
  print *, 'intraf', nm + 1, nm - 1
end

subroutine kineti(nat)
  integer nat
  print *, 'kineti', nat * 2, nat + 1
end

subroutine interf(n)
  integer n, i, ncut
  real f
  ncut = 6
  call bound
  f = 0.0
  do i = 1, ncut
    f = f + n * 0.001
  end do
  print *, 'interf', ncut, ncut * 2, n / ncut
end

subroutine poteng(nsteps, nterm)
  integer nsteps, nterm, k, nquad
  real e
  nquad = 5
  call bound
  e = 0.0
  do k = 1, nterm
    e = e + nquad
  end do
  print *, 'poteng', nquad, nquad + nterm, nterm * 2, nsteps
end

subroutine bound
  common /box/ side
  real side
  side = 13.8
end
|}
