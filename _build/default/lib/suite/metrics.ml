(** Program characteristics — the paper's Table 1.

    Lines are counted like the paper counts them: non-comment, non-blank
    source lines.  Mean and median lines per procedure describe the
    program's modularity. *)

open Ipcp_frontend

type characteristics = {
  name : string;
  lines : int;
  procedures : int;
  call_sites : int;
  mean_lines : float;
  median_lines : int;
}

(* Non-blank, non-comment lines of a MiniFort source string. *)
let count_lines (src : string) : int =
  String.split_on_char '\n' src
  |> List.filter (fun line ->
         let trimmed = String.trim line in
         trimmed <> "" && not (String.length trimmed > 0 && trimmed.[0] = '!'))
  |> List.length

(* Lines of one unit: from its header line to its "end" (inclusive). *)
let unit_line_counts (src : string) : int list =
  let lines =
    String.split_on_char '\n' src
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '!')
  in
  let is_header l =
    let starts p =
      String.length l >= String.length p && String.sub l 0 (String.length p) = p
    in
    starts "program " || starts "subroutine " || starts "function "
  in
  let rec go acc current = function
    | [] -> List.rev acc
    | l :: rest ->
      if is_header l then go acc 1 rest
      else if l = "end" then go ((current + 1) :: acc) 0 rest
      else go acc (current + 1) rest
  in
  go [] 0 lines

let characteristics (e : Registry.entry) : characteristics =
  let prog = Registry.program e in
  let per_unit = unit_line_counts e.source in
  let call_sites =
    List.fold_left
      (fun acc (p : Prog.proc) -> acc + List.length (Prog.call_sites p))
      0 prog.procs
  in
  {
    name = e.name;
    lines = count_lines e.source;
    procedures = List.length prog.procs;
    call_sites;
    mean_lines = Ipcp_support.Stats.mean per_unit;
    median_lines = Ipcp_support.Stats.median per_unit;
  }

let table1 () : characteristics list =
  List.map characteristics Registry.entries

let pp_table1 ppf () =
  Fmt.pf ppf "%-12s %6s %6s %6s %7s %7s@." "Program" "lines" "procs" "calls"
    "mean" "median";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-12s %6d %6d %6d %7.1f %7d@." c.name c.lines c.procedures
        c.call_sites c.mean_lines c.median_lines)
    (table1 ())
