(* Unit and property tests for the analysis layer: the constant lattice of
   Figure 1, symbolic (polynomial) expressions, SCCP and DCE. *)

open Ipcp_frontend
open Ipcp_ir
open Ipcp_analysis

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Figure 1: the constant propagation lattice *)

let gen_lattice =
  QCheck2.Gen.(
    oneof
      [
        return Const_lattice.Top;
        return Const_lattice.Bottom;
        map (fun n -> Const_lattice.Const n) (int_range (-5) 5);
      ])

let prop_meet_commutative =
  QCheck2.Test.make ~name:"meet commutative" ~count:200
    QCheck2.Gen.(pair gen_lattice gen_lattice)
    (fun (a, b) ->
      Const_lattice.equal (Const_lattice.meet a b) (Const_lattice.meet b a))

let prop_meet_associative =
  QCheck2.Test.make ~name:"meet associative" ~count:200
    QCheck2.Gen.(triple gen_lattice gen_lattice gen_lattice)
    (fun (a, b, c) ->
      Const_lattice.equal
        (Const_lattice.meet a (Const_lattice.meet b c))
        (Const_lattice.meet (Const_lattice.meet a b) c))

let prop_meet_idempotent =
  QCheck2.Test.make ~name:"meet idempotent" ~count:100 gen_lattice (fun a ->
      Const_lattice.equal (Const_lattice.meet a a) a)

let prop_top_identity =
  QCheck2.Test.make ~name:"top is identity" ~count:100 gen_lattice (fun a ->
      Const_lattice.equal (Const_lattice.meet Const_lattice.Top a) a)

let prop_bottom_absorbing =
  QCheck2.Test.make ~name:"bottom absorbs" ~count:100 gen_lattice (fun a ->
      Const_lattice.equal
        (Const_lattice.meet Const_lattice.Bottom a)
        Const_lattice.Bottom)

let prop_meet_is_glb =
  QCheck2.Test.make ~name:"meet is the greatest lower bound" ~count:200
    QCheck2.Gen.(pair gen_lattice gen_lattice)
    (fun (a, b) ->
      let m = Const_lattice.meet a b in
      Const_lattice.le m a && Const_lattice.le m b)

let test_lattice_meet_table () =
  (* the exact rules of Figure 1 *)
  let top = Const_lattice.Top
  and bot = Const_lattice.Bottom
  and c1 = Const_lattice.Const 1
  and c2 = Const_lattice.Const 2 in
  let eq = Const_lattice.equal in
  check Alcotest.bool "T ^ T" true (eq (Const_lattice.meet top top) top);
  check Alcotest.bool "T ^ c" true (eq (Const_lattice.meet top c1) c1);
  check Alcotest.bool "c ^ c" true (eq (Const_lattice.meet c1 c1) c1);
  check Alcotest.bool "c1 ^ c2" true (eq (Const_lattice.meet c1 c2) bot);
  check Alcotest.bool "bot ^ any" true (eq (Const_lattice.meet bot c1) bot);
  check Alcotest.bool "heights" true
    (Const_lattice.height top = 2
    && Const_lattice.height c1 = 1
    && Const_lattice.height bot = 0)

(* ------------------------------------------------------------------ *)
(* Symbolic expressions *)

let gen_sym =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map Symbolic.const (int_range (-10) 10);
               map (fun i -> Symbolic.leaf (Symbolic.Lformal i)) (int_range 0 3);
               return Symbolic.unknown;
             ]
         else
           oneof
             [
               map Symbolic.const (int_range (-10) 10);
               map (fun i -> Symbolic.leaf (Symbolic.Lformal i)) (int_range 0 3);
               map Symbolic.neg (self (n / 2));
               map2 Symbolic.add (self (n / 2)) (self (n / 2));
               map2 Symbolic.sub (self (n / 2)) (self (n / 2));
               map2 Symbolic.mul (self (n / 2)) (self (n / 2));
             ])

(* naive evaluation without smart-constructor simplification, for
   cross-checking; only generated ops appear *)
let env_of_array arr = function
  | Symbolic.Lformal i -> if i < Array.length arr then Some arr.(i) else None
  | Symbolic.Lglobal _ -> None

let prop_eval_matches_substitute =
  QCheck2.Test.make ~name:"symbolic eval agrees with substitute-to-const"
    ~count:300
    QCheck2.Gen.(pair gen_sym (array_size (return 4) (int_range (-5) 5)))
    (fun (sym, arr) ->
      let env = env_of_array arr in
      let direct = Symbolic.eval ~env sym in
      let via_subst = Symbolic.const_value (Symbolic.substitute ~env sym) in
      direct = via_subst)

let prop_support_covers_eval =
  QCheck2.Test.make
    ~name:"evaluation succeeds whenever all support leaves are known"
    ~count:300
    QCheck2.Gen.(pair gen_sym (array_size (return 4) (int_range (-5) 5)))
    (fun (sym, arr) ->
      match Symbolic.support sym with
      | None -> Symbolic.eval ~env:(env_of_array arr) sym = None
      | Some _ ->
        (* all leaves 0..3 are bound, so eval may only fail on arithmetic
           faults (division by zero / 0**negative) — none are generated *)
        Symbolic.eval ~env:(env_of_array arr) sym <> None)

let test_symbolic_folding () =
  let open Symbolic in
  check Alcotest.bool "2+3" true (equal (add (const 2) (const 3)) (const 5));
  check Alcotest.bool "x+0" true
    (equal (add (leaf (Lformal 0)) (const 0)) (leaf (Lformal 0)));
  check Alcotest.bool "x*1" true
    (equal (mul (leaf (Lformal 0)) (const 1)) (leaf (Lformal 0)));
  check Alcotest.bool "x*0" true
    (equal (mul (leaf (Lformal 0)) (const 0)) (const 0));
  check Alcotest.bool "x/1" true
    (equal (div (leaf (Lformal 0)) (const 1)) (leaf (Lformal 0)));
  check Alcotest.bool "x**0" true
    (equal (pow (leaf (Lformal 0)) (const 0)) (const 1));
  check Alcotest.bool "1/0 unknown" true (is_unknown (div (const 1) (const 0)));
  check Alcotest.bool "neg neg" true
    (equal (neg (neg (leaf (Lformal 1)))) (leaf (Lformal 1)));
  check Alcotest.bool "unknown poisons" true
    (is_unknown (add unknown (const 1)))

let test_symbolic_support () =
  let open Symbolic in
  let s =
    add (mul (leaf (Lformal 0)) (leaf (Lformal 1))) (leaf (Lglobal "c:0"))
  in
  match support s with
  | Some [ Lformal 0; Lformal 1; Lglobal "c:0" ] -> ()
  | Some other ->
    fail
      (Fmt.str "unexpected support: %a" (Fmt.list ~sep:Fmt.comma pp_leaf) other)
  | None -> fail "support should exist"

let test_symbolic_as_leaf () =
  let open Symbolic in
  check Alcotest.bool "leaf is pass-through" true
    (as_leaf (leaf (Lformal 2)) = Some (Lformal 2));
  check Alcotest.bool "sum is not" true (as_leaf (add (leaf (Lformal 2)) (const 1)) = None)

(* ------------------------------------------------------------------ *)
(* SCCP *)

let sccp_of src name ~entry_env =
  let prog = Sema.parse_and_resolve src in
  let proc = Prog.find_proc_exn prog name in
  let cfg = Lower.lower_proc ~next_expr_id:(Lower.expr_id_ceiling prog) proc in
  let dom = Dom.compute cfg in
  let ssa = Ssa.build proc cfg dom in
  (prog, proc, Sccp.run ~entry_env ssa)

let no_entry (_ : Prog.var) = None

(* count of constant uses found, via the harvested expr table *)
let const_uses (r : Sccp.result) = Hashtbl.length r.expr_consts

let test_sccp_straightline () =
  let _, _, r =
    sccp_of "program t\nn = 2\nm = n * 3\nprint *, m + n\nend\n" "t"
      ~entry_env:no_entry
  in
  (* uses: n in "n * 3", m and n in the print *)
  check Alcotest.int "three constant uses" 3 (const_uses r)

let test_sccp_branch_both_sides_agree () =
  let _, _, r =
    sccp_of
      "program t\ninteger n, m\nread *, m\nif (m .gt. 0) then\nn = 4\nelse\nn \
       = 4\nend if\nprint *, n\nend\n"
      "t" ~entry_env:no_entry
  in
  check Alcotest.int "agreeing phi is constant" 1 (const_uses r)

let test_sccp_branch_disagree () =
  let _, _, r =
    sccp_of
      "program t\ninteger n, m\nread *, m\nif (m .gt. 0) then\nn = 4\nelse\nn \
       = 5\nend if\nprint *, n\nend\n"
      "t" ~entry_env:no_entry
  in
  check Alcotest.int "conflicting phi not constant" 0 (const_uses r)

let test_sccp_dead_branch_ignored () =
  (* conditional constants: the false branch must not pollute n *)
  let _, _, r =
    sccp_of
      "program t\ninteger n, m\nm = 1\nif (m .gt. 0) then\nn = 4\nelse\nn = \
       5\nend if\nprint *, n\nend\n"
      "t" ~entry_env:no_entry
  in
  (* constant uses: m in the condition, n in the print *)
  check Alcotest.int "dead branch ignored" 2 (const_uses r);
  let cond_known = Hashtbl.length r.cond_consts in
  check Alcotest.int "branch condition known" 1 cond_known

let test_sccp_loop_invariant () =
  let _, _, r =
    sccp_of
      "program t\ninteger k, i, s\nk = 7\ns = 0\ndo i = 1, 3\ns = s + k\nend \
       do\nprint *, s, k\nend\n"
      "t" ~entry_env:no_entry
  in
  (* k constant at both uses; s and i vary *)
  check Alcotest.int "loop-invariant constant" 2 (const_uses r)

let test_sccp_seeded_entry () =
  let prog_src =
    "subroutine s(x)\ninteger x\nprint *, x + 1\nend\nprogram t\ncall \
     s(3)\nend\n"
  in
  let _, _, r_unseeded = sccp_of prog_src "s" ~entry_env:no_entry in
  check Alcotest.int "unseeded finds nothing" 0 (const_uses r_unseeded);
  let entry_env (v : Prog.var) =
    match v.vkind with Prog.Kformal 0 -> Some 3 | _ -> None
  in
  let _, _, r_seeded = sccp_of prog_src "s" ~entry_env in
  check Alcotest.int "seeded finds the use" 1 (const_uses r_seeded)

let test_sccp_executable_blocks () =
  let _, _, r =
    sccp_of
      "program t\ninteger m\nm = 0\nif (m .eq. 1) then\nprint *, 'dead'\nend \
       if\nprint *, 'live'\nend\n"
      "t" ~entry_env:no_entry
  in
  let executable_count =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.executable
  in
  let total = Array.length r.executable in
  check Alcotest.bool "some block is dead" true (executable_count < total)

(* ------------------------------------------------------------------ *)
(* DCE *)

let dce_proc src name ~cond_consts_of =
  let prog = Sema.parse_and_resolve src in
  let proc = Prog.find_proc_exn prog name in
  let cfg = Lower.lower_proc ~next_expr_id:(Lower.expr_id_ceiling prog) proc in
  let dom = Dom.compute cfg in
  let ssa = Ssa.build proc cfg dom in
  let sccp = Sccp.run ~entry_env:no_entry ssa in
  ignore cond_consts_of;
  Dce.run ~cond_consts:sccp.cond_consts proc

let count_stmts stmts =
  let n = ref 0 in
  Prog.iter_stmts (fun _ -> incr n) stmts;
  !n

let test_dce_folds_constant_branch () =
  let proc', changed =
    dce_proc
      "program t\ninteger m, n\nm = 0\nif (m .eq. 1) then\nn = 1\nprint *, \
       n\nelse\nn = 2\nend if\nprint *, n\nend\n"
      "t" ~cond_consts_of:()
  in
  check Alcotest.bool "changed" true changed;
  (* the then-branch disappears *)
  let has_print_n_eq_1 = ref false in
  Prog.iter_stmts
    (fun s ->
      match s.sdesc with
      | Prog.Sif (arms, _) -> if List.length arms > 0 then has_print_n_eq_1 := true
      | _ -> ())
    proc'.pbody;
  check Alcotest.bool "if with live arms gone" false !has_print_n_eq_1

let test_dce_removes_dead_assignment () =
  let proc', changed =
    dce_proc "program t\ninteger n, m\nn = 1\nm = 99\nprint *, n\nend\n" "t"
      ~cond_consts_of:()
  in
  check Alcotest.bool "changed" true changed;
  let stmts = count_stmts proc'.pbody in
  (* m = 99 removed *)
  check Alcotest.int "two statements left" 2 stmts

let test_dce_keeps_labelled_target () =
  let proc', _ =
    dce_proc
      "program t\ninteger n\nn = 0\ngoto 20\nn = 5\n20 print *, n\nend\n" "t"
      ~cond_consts_of:()
  in
  (* the labelled print must survive; the dead n = 5 may go *)
  let has_label = ref false in
  Prog.iter_stmts
    (fun s -> if s.slabel = Some 20 then has_label := true)
    proc'.pbody;
  check Alcotest.bool "label kept" true !has_label

let test_dce_drops_code_after_stop () =
  let proc', changed =
    dce_proc "program t\nprint *, 1\nstop\nprint *, 2\nprint *, 3\nend\n" "t"
      ~cond_consts_of:()
  in
  check Alcotest.bool "changed" true changed;
  check Alcotest.int "two statements" 2 (count_stmts proc'.pbody)

let test_dce_noop_on_live_code () =
  let _, changed =
    dce_proc
      "program t\ninteger n, m\nread *, m\nif (m .gt. 0) then\nn = 1\nelse\nn \
       = 2\nend if\nprint *, n\nend\n"
      "t" ~cond_consts_of:()
  in
  check Alcotest.bool "nothing to remove" false changed

let suite =
  [
    ("lattice meet table (Figure 1)", `Quick, test_lattice_meet_table);
    QCheck_alcotest.to_alcotest prop_meet_commutative;
    QCheck_alcotest.to_alcotest prop_meet_associative;
    QCheck_alcotest.to_alcotest prop_meet_idempotent;
    QCheck_alcotest.to_alcotest prop_top_identity;
    QCheck_alcotest.to_alcotest prop_bottom_absorbing;
    QCheck_alcotest.to_alcotest prop_meet_is_glb;
    ("symbolic folding", `Quick, test_symbolic_folding);
    ("symbolic support", `Quick, test_symbolic_support);
    ("symbolic pass-through detection", `Quick, test_symbolic_as_leaf);
    QCheck_alcotest.to_alcotest prop_eval_matches_substitute;
    QCheck_alcotest.to_alcotest prop_support_covers_eval;
    ("sccp straight line", `Quick, test_sccp_straightline);
    ("sccp agreeing phi", `Quick, test_sccp_branch_both_sides_agree);
    ("sccp conflicting phi", `Quick, test_sccp_branch_disagree);
    ("sccp conditional constants", `Quick, test_sccp_dead_branch_ignored);
    ("sccp loop invariant", `Quick, test_sccp_loop_invariant);
    ("sccp seeded entry facts", `Quick, test_sccp_seeded_entry);
    ("sccp executable blocks", `Quick, test_sccp_executable_blocks);
    ("dce folds constant branch", `Quick, test_dce_folds_constant_branch);
    ("dce removes dead assignment", `Quick, test_dce_removes_dead_assignment);
    ("dce keeps labelled targets", `Quick, test_dce_keeps_labelled_target);
    ("dce drops code after stop", `Quick, test_dce_drops_code_after_stop);
    ("dce noop on live code", `Quick, test_dce_noop_on_live_code);
  ]
