(* Unit tests for the MiniFort lexer, parser, semantic analysis and
   pretty-printer. *)

open Ipcp_frontend

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Lexer *)

let tokens src =
  List.map fst (Lexer.tokenize src)
  |> List.filter (fun t -> not (Token.equal t Token.NEWLINE))

let test_lex_simple () =
  match tokens "x = 1 + 2" with
  | [ IDENT "x"; EQUALS; INT 1; PLUS; INT 2; EOF ] -> ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_case_insensitive () =
  match tokens "CALL Foo(N)" with
  | [ KW_CALL; IDENT "foo"; LPAREN; IDENT "n"; RPAREN; EOF ] -> ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_dotted_ops () =
  match tokens "a .lt. b .and. .not. c .Ge. 2" with
  | [
   IDENT "a"; LT; IDENT "b"; AND; NOT; IDENT "c"; GE; INT 2; EOF;
  ] ->
    ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_real_vs_dotted () =
  (* "1.lt.2" must lex as INT 1, .lt., INT 2 — not as a real literal. *)
  match tokens "1.lt.2" with
  | [ INT 1; LT; INT 2; EOF ] -> ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_reals () =
  match tokens "x = 1.5 + 2. + .25 + 1e3 + 2.5d-1" with
  | [
   IDENT "x"; EQUALS; REAL a; PLUS; REAL b; PLUS; REAL c; PLUS; INT 1;
   IDENT "e3"; PLUS; REAL e; EOF;
  ] ->
    (* "1e3" without a decimal point lexes as INT 1 then identifier e3 —
       MiniFort requires a point in real literals, as F77 effectively does *)
    check (Alcotest.float 1e-9) "1.5" 1.5 a;
    check (Alcotest.float 1e-9) "2." 2.0 b;
    check (Alcotest.float 1e-9) ".25" 0.25 c;
    check (Alcotest.float 1e-9) "2.5d-1" 0.25 e
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_power () =
  match tokens "a ** 2 * b" with
  | [ IDENT "a"; POWER; INT 2; STAR; IDENT "b"; EOF ] -> ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_comment_and_continuation () =
  let src = "x = 1 + & ! trailing comment\n    2\ny = 3" in
  match tokens src with
  | [ IDENT "x"; EQUALS; INT 1; PLUS; INT 2; IDENT "y"; EQUALS; INT 3; EOF ] ->
    ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_string () =
  match tokens "print *, 'it''s fine'" with
  | [ KW_PRINT; STAR; COMMA; STRING "it's fine"; EOF ] -> ()
  | ts ->
    fail (Fmt.str "unexpected tokens: %a" (Fmt.list ~sep:Fmt.sp Token.pp) ts)

let test_lex_error_unterminated_string () =
  match Lexer.tokenize "x = 'oops" with
  | exception Loc.Error _ -> ()
  | _ -> fail "expected a lexer error"

let test_lex_newlines_collapse () =
  let all = List.map fst (Lexer.tokenize "a = 1\n\n\n\nb = 2\n") in
  let newlines =
    List.length (List.filter (fun t -> Token.equal t Token.NEWLINE) all)
  in
  check Alcotest.int "collapsed newlines" 2 newlines

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_unit_of src =
  match Parser.parse_program src with
  | [ u ] -> u
  | us -> fail (Fmt.str "expected one unit, got %d" (List.length us))

let test_parse_assignment_precedence () =
  let e = Parser.parse_expression "1 + 2 * 3" in
  match e.edesc with
  | Ebinop (Add, { edesc = Eint 1; _ }, { edesc = Ebinop (Mul, _, _); _ }) -> ()
  | _ -> fail "wrong precedence for 1 + 2 * 3"

let test_parse_power_right_assoc () =
  let e = Parser.parse_expression "2 ** 3 ** 2" in
  match e.edesc with
  | Ebinop (Pow, { edesc = Eint 2; _ }, { edesc = Ebinop (Pow, _, _); _ }) -> ()
  | _ -> fail "** must be right-associative"

let test_parse_unary_minus_power () =
  (* -x**2 parses as -(x**2) in FORTRAN *)
  let e = Parser.parse_expression "-x ** 2" in
  match e.edesc with
  | Eunop (Neg, { edesc = Ebinop (Pow, _, _); _ }) -> ()
  | _ -> fail "-x**2 must parse as -(x**2)"

let test_parse_relational_logical () =
  let e = Parser.parse_expression "a + 1 .gt. b .and. c .lt. d" in
  match e.edesc with
  | Ebinop (And, { edesc = Ebinop (Gt, _, _); _ }, { edesc = Ebinop (Lt, _, _); _ })
    ->
    ()
  | _ -> fail "relational must bind tighter than .and."

let test_parse_if_block () =
  let u =
    parse_unit_of
      "program t\nif (x .gt. 0) then\n  y = 1\nelse if (x .lt. 0) then\n  y = \
       2\nelse\n  y = 3\nend if\nend\n"
  in
  match u.ubody with
  | [ { sdesc = Sif ([ (_, [ _ ]); (_, [ _ ]) ], [ _ ]); _ } ] -> ()
  | _ -> fail "if/elseif/else shape wrong"

let test_parse_logical_if () =
  let u = parse_unit_of "program t\nif (x .gt. 0) goto 10\n10 continue\nend\n" in
  match u.ubody with
  | [
   { sdesc = Sif ([ (_, [ { sdesc = Sgoto 10; _ } ]) ], []); _ };
   { label = Some 10; sdesc = Scontinue; _ };
  ] ->
    ()
  | _ -> fail "logical if shape wrong"

let test_parse_do_loop () =
  let u =
    parse_unit_of "program t\ndo i = 1, 10, 2\n  s = s + i\nend do\nend\n"
  in
  match u.ubody with
  | [ { sdesc = Sdo ("i", _, _, Some _, [ _ ]); _ } ] -> ()
  | _ -> fail "do loop shape wrong"

let test_parse_do_while () =
  let u =
    parse_unit_of "program t\ndo while (i .lt. 10)\n  i = i + 1\nenddo\nend\n"
  in
  match u.ubody with
  | [ { sdesc = Sdowhile (_, [ _ ]); _ } ] -> ()
  | _ -> fail "do while shape wrong"

let test_parse_declarations () =
  let u =
    parse_unit_of
      "subroutine s(a, n)\ninteger a(10, 20), n\nreal x\ncommon /blk/ p, \
       q\nparameter (m = 3)\na(1, n) = m\nend\n"
  in
  check Alcotest.int "decl count" 4 (List.length u.udecls);
  match u.udecls with
  | [ Dtype (Tint, [ ("a", [ 10; 20 ]); ("n", []) ]); Dtype (Treal, [ ("x", []) ]);
      Dcommon ("blk", [ "p"; "q" ]); Dparameter [ ("m", _) ] ] ->
    ()
  | _ -> fail "declaration shapes wrong"

let test_parse_call_no_args () =
  let u = parse_unit_of "program t\ncall init\nend\n" in
  match u.ubody with
  | [ { sdesc = Scall ("init", []); _ } ] -> ()
  | _ -> fail "no-arg call shape wrong"

let test_parse_error_missing_endif () =
  match Parser.parse_program "program t\nif (x .gt. 0) then\ny = 1\nend\n" with
  | exception Loc.Error _ -> ()
  | _ -> fail "expected a parse error"

let test_parse_multiple_units () =
  let us =
    Parser.parse_program
      "program main\ncall f(1)\nend\n\nsubroutine f(x)\nx = x + 1\nend\n"
  in
  check Alcotest.int "unit count" 2 (List.length us)

(* ------------------------------------------------------------------ *)
(* Round-trip: parse → print → parse = same AST *)

let roundtrip src =
  let ast1 = Parser.parse_program src in
  let printed = Pretty.ast_program_to_string ast1 in
  let ast2 =
    try Parser.parse_program printed
    with Loc.Error (l, m) ->
      fail (Fmt.str "reparse failed at %a: %s\nprinted:\n%s" Loc.pp l m printed)
  in
  if not (Ast.equal_program ast1 ast2) then
    fail (Fmt.str "round-trip mismatch; printed:\n%s" printed)

let test_roundtrip_example () =
  roundtrip
    "program main\n\
     integer n, a(5)\n\
     common /c/ g\n\
     parameter (k = 2 + 3)\n\
     n = k * 2\n\
     a(1) = n\n\
     if (n .gt. 0) then\n\
     call work(n, a)\n\
     else\n\
     n = -n ** 2\n\
     end if\n\
     do i = 1, n\n\
     g = g + i\n\
     end do\n\
     do while (g .gt. 0.5)\n\
     g = g / 2.0\n\
     end do\n\
     if (n .eq. 0) goto 99\n\
     print *, 'done', n\n\
     read *, m\n\
     99 continue\n\
     stop\n\
     end\n\n\
     subroutine work(n, a)\n\
     integer n, a(5)\n\
     a(n) = n\n\
     return\n\
     end\n"

(* ------------------------------------------------------------------ *)
(* Sema *)

let resolve src = Sema.parse_and_resolve src

let expect_sema_error src =
  match resolve src with
  | exception Loc.Error _ -> ()
  | _ -> fail "expected a semantic error"

let test_sema_implicit_typing () =
  let p = resolve "program t\nival = 1\nxval = 2.0\nend\n" in
  let main = Prog.find_proc_exn p "t" in
  let find n = List.find (fun (v : Prog.var) -> v.vname = n) main.plocals in
  check Alcotest.bool "ival integer" true ((find "ival").vty = Prog.Tint);
  check Alcotest.bool "xval real" true ((find "xval").vty = Prog.Treal)

let test_sema_formals_resolved () =
  let p =
    resolve
      "program t\ncall s(1, 2.0)\nend\nsubroutine s(n, x)\nreal x\nn = 1\nend\n"
  in
  let s = Prog.find_proc_exn p "s" in
  (match s.pformals with
  | [ { vkind = Kformal 0; vty = Tint; _ }; { vkind = Kformal 1; vty = Treal; _ } ]
    ->
    ()
  | _ -> fail "formals wrong");
  check Alcotest.int "no locals" 0 (List.length s.plocals)

let test_sema_array_vs_call () =
  let p =
    resolve
      "program t\n\
       integer a(10)\n\
       a(1) = f(2)\n\
       end\n\
       function f(x)\n\
       integer f, x\n\
       f = x * 2\n\
       end\n"
  in
  let main = Prog.find_proc_exn p "t" in
  let saw_call = ref false and saw_arr = ref false in
  Prog.iter_exprs
    (fun e ->
      match e.edesc with
      | Ecall ("f", _) -> saw_call := true
      | Earr _ -> saw_arr := true
      | _ -> ())
    main.pbody;
  (* the lhs a(1) is an Larr, not an expr; rhs f(2) is a call *)
  check Alcotest.bool "call resolved" true !saw_call

let test_sema_common_identity () =
  let p =
    resolve
      "program t\n\
       common /blk/ x, n\n\
       integer n\n\
       n = 1\n\
       call s\n\
       end\n\
       subroutine s\n\
       common /blk/ y, m\n\
       integer m\n\
       m = 2\n\
       end\n"
  in
  let t = Prog.find_proc_exn p "t" and s = Prog.find_proc_exn p "s" in
  let g1 = List.map snd t.pglobals and g2 = List.map snd s.pglobals in
  check Alcotest.int "two members" 2 (List.length g1);
  List.iter2
    (fun (a : Prog.global) (b : Prog.global) ->
      check Alcotest.bool "same identity" true (Prog.equal_global a b))
    g1 g2

let test_sema_common_mismatch () =
  expect_sema_error
    "program t\ncommon /blk/ x, n\ninteger n\nend\nsubroutine s\ncommon /blk/ \
     y\nend\n"

let test_sema_common_type_mismatch () =
  expect_sema_error
    "program t\ncommon /blk/ n\ninteger n\nend\nsubroutine s\ncommon /blk/ \
     y\nend\n"

let test_sema_parameter_folding () =
  let p = resolve "program t\nparameter (n = 4 * 5)\ni = n + 1\nend\n" in
  let main = Prog.find_proc_exn p "t" in
  let found = ref false in
  Prog.iter_exprs
    (fun e -> match e.edesc with Cint 20 -> found := true | _ -> ())
    main.pbody;
  check Alcotest.bool "parameter folded to 20" true !found

let test_sema_arity_mismatch () =
  expect_sema_error "program t\ncall s(1)\nend\nsubroutine s(a, b)\nend\n"

let test_sema_type_mismatch_arg () =
  expect_sema_error
    "program t\ncall s(1.5)\nend\nsubroutine s(n)\nn = 1\nend\n"

let test_sema_unknown_subroutine () =
  expect_sema_error "program t\ncall nosuch(1)\nend\n"

let test_sema_function_called_as_subroutine () =
  expect_sema_error
    "program t\ncall f(1)\nend\nfunction f(x)\nf = x\nend\n"

let test_sema_goto_undefined_label () =
  expect_sema_error "program t\ngoto 42\nend\n"

let test_sema_duplicate_label () =
  expect_sema_error "program t\n10 continue\n10 continue\nend\n"

let test_sema_no_main () =
  expect_sema_error "subroutine s\nend\n"

let test_sema_two_mains () =
  expect_sema_error "program a\nend\nprogram b\nend\n"

let test_sema_duplicate_unit () =
  expect_sema_error "program t\nend\nsubroutine s\nend\nsubroutine s\nend\n"

let test_sema_array_without_subscript () =
  expect_sema_error "program t\ninteger a(5)\nx = a + 1\nend\n"

let test_sema_subscript_count () =
  expect_sema_error "program t\ninteger a(5, 5)\na(1) = 0\nend\n"

let test_sema_logical_mix () =
  expect_sema_error "program t\nn = 1 .and. 2\nend\n"

let test_sema_do_var_real () =
  expect_sema_error "program t\ndo x = 1, 5\nend do\nend\n"

(* FORTRAN 77 §11.10.5: the do-variable cannot be redefined while active *)
let test_sema_do_var_assigned_in_loop () =
  expect_sema_error "program t\ndo i = 1, 5\ni = 2\nend do\nend\n"

let test_sema_do_var_nested_reuse () =
  expect_sema_error
    "program t\ndo i = 1, 5\ndo i = 1, 3\nend do\nend do\nend\n"

let test_sema_do_var_read_target () =
  expect_sema_error "program t\ndo i = 1, 5\nread *, i\nend do\nend\n"

let test_sema_do_var_assigned_in_nested_if () =
  expect_sema_error
    "program t\ninteger m\nm = 1\ndo i = 1, 5\nif (m .gt. 0) then\ni = \
     0\nend if\nend do\nend\n"

let test_sema_do_var_free_after_loop () =
  (* after the loop the variable is ordinary again *)
  let p =
    resolve "program t\ndo i = 1, 5\nend do\ni = 9\nprint *, i\nend\n"
  in
  check Alcotest.int "resolved" 1 (List.length p.procs)

let test_sema_whole_array_arg () =
  let p =
    resolve
      "program t\n\
       integer a(8)\n\
       call s(a, 8)\n\
       end\n\
       subroutine s(b, n)\n\
       integer b(8), n\n\
       b(1) = n\n\
       end\n"
  in
  let main = Prog.find_proc_exn p "t" in
  match Prog.call_sites main with
  | [ { cs_args = [ { edesc = Evar v; _ }; _ ]; _ } ] ->
    check Alcotest.bool "whole array actual" true (Prog.is_array v)
  | _ -> fail "call site shape wrong"

let test_sema_recursive_function_allowed () =
  let p =
    resolve
      "program t\n\
       i = fact(5)\n\
       end\n\
       function fact(n)\n\
       integer fact, n\n\
       if (n .le. 1) then\n\
       fact = 1\n\
       else\n\
       fact = n * fact(n - 1)\n\
       end if\n\
       end\n"
  in
  check Alcotest.int "two procs" 2 (List.length p.procs)

let test_sema_call_sites_include_function_calls () =
  let p =
    resolve
      "program t\n\
       i = f(1) + f(2)\n\
       call s(i)\n\
       end\n\
       function f(x)\ninteger f, x\nf = x\nend\n\
       subroutine s(x)\ninteger x\nx = 0\nend\n"
  in
  let main = Prog.find_proc_exn p "t" in
  check Alcotest.int "three call sites" 3 (List.length (Prog.call_sites main))

(* Resolved-program printing re-resolves to an equivalent program. *)
let test_resolved_print_reparses () =
  let src =
    "program main\n\
     integer n, a(4)\n\
     common /cfg/ size, scale\n\
     integer size\n\
     n = 10\n\
     size = 3\n\
     a(2) = n\n\
     call grind(n, a)\n\
     end\n\
     subroutine grind(k, arr)\n\
     integer k, arr(4)\n\
     common /cfg/ sz, sc\n\
     integer sz\n\
     arr(1) = k + sz\n\
     end\n"
  in
  let p1 = resolve src in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    try resolve printed
    with Loc.Error (l, m) ->
      fail (Fmt.str "re-resolve failed at %a: %s\nprinted:\n%s" Loc.pp l m printed)
  in
  check Alcotest.int "same proc count" (List.length p1.procs)
    (List.length p2.procs)

let suite =
  [
    ("lex simple", `Quick, test_lex_simple);
    ("lex case insensitive", `Quick, test_lex_case_insensitive);
    ("lex dotted operators", `Quick, test_lex_dotted_ops);
    ("lex 1.lt.2 disambiguation", `Quick, test_lex_real_vs_dotted);
    ("lex real literals", `Quick, test_lex_reals);
    ("lex power operator", `Quick, test_lex_power);
    ("lex comments and continuation", `Quick, test_lex_comment_and_continuation);
    ("lex string escapes", `Quick, test_lex_string);
    ("lex unterminated string", `Quick, test_lex_error_unterminated_string);
    ("lex newline collapsing", `Quick, test_lex_newlines_collapse);
    ("parse precedence", `Quick, test_parse_assignment_precedence);
    ("parse power right-assoc", `Quick, test_parse_power_right_assoc);
    ("parse -x**2", `Quick, test_parse_unary_minus_power);
    ("parse relational vs logical", `Quick, test_parse_relational_logical);
    ("parse if block", `Quick, test_parse_if_block);
    ("parse logical if", `Quick, test_parse_logical_if);
    ("parse do loop", `Quick, test_parse_do_loop);
    ("parse do while", `Quick, test_parse_do_while);
    ("parse declarations", `Quick, test_parse_declarations);
    ("parse call without args", `Quick, test_parse_call_no_args);
    ("parse missing endif", `Quick, test_parse_error_missing_endif);
    ("parse multiple units", `Quick, test_parse_multiple_units);
    ("roundtrip example", `Quick, test_roundtrip_example);
    ("sema implicit typing", `Quick, test_sema_implicit_typing);
    ("sema formals", `Quick, test_sema_formals_resolved);
    ("sema array vs call", `Quick, test_sema_array_vs_call);
    ("sema common identity", `Quick, test_sema_common_identity);
    ("sema common length mismatch", `Quick, test_sema_common_mismatch);
    ("sema common type mismatch", `Quick, test_sema_common_type_mismatch);
    ("sema parameter folding", `Quick, test_sema_parameter_folding);
    ("sema arity mismatch", `Quick, test_sema_arity_mismatch);
    ("sema argument type mismatch", `Quick, test_sema_type_mismatch_arg);
    ("sema unknown subroutine", `Quick, test_sema_unknown_subroutine);
    ("sema function as subroutine", `Quick, test_sema_function_called_as_subroutine);
    ("sema goto undefined label", `Quick, test_sema_goto_undefined_label);
    ("sema duplicate label", `Quick, test_sema_duplicate_label);
    ("sema no main", `Quick, test_sema_no_main);
    ("sema two mains", `Quick, test_sema_two_mains);
    ("sema duplicate unit", `Quick, test_sema_duplicate_unit);
    ("sema array without subscript", `Quick, test_sema_array_without_subscript);
    ("sema subscript count", `Quick, test_sema_subscript_count);
    ("sema logical/numeric mix", `Quick, test_sema_logical_mix);
    ("sema real do variable", `Quick, test_sema_do_var_real);
    ("sema do var assigned in loop", `Quick, test_sema_do_var_assigned_in_loop);
    ("sema do var nested reuse", `Quick, test_sema_do_var_nested_reuse);
    ("sema do var read target", `Quick, test_sema_do_var_read_target);
    ("sema do var assigned in nested if", `Quick,
      test_sema_do_var_assigned_in_nested_if);
    ("sema do var free after loop", `Quick, test_sema_do_var_free_after_loop);
    ("sema whole array argument", `Quick, test_sema_whole_array_arg);
    ("sema recursion allowed", `Quick, test_sema_recursive_function_allowed);
    ("sema call sites incl. function calls", `Quick,
      test_sema_call_sites_include_function_calls);
    ("resolved print reparses", `Quick, test_resolved_print_reparses);
  ]
