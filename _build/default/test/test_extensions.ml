(* Tests for the extensions beyond the paper's core study:
   - the binding multi-graph solver (must agree exactly with the iterative
     call-graph solver);
   - constant-driven procedure cloning;
   - the FORTRAN argument-aliasing checker. *)

open Ipcp_frontend
open Ipcp_core
open Ipcp_suite

let check = Alcotest.check
let fail = Alcotest.fail

let resolve = Sema.parse_and_resolve

(* ------------------------------------------------------------------ *)
(* Binding multi-graph solver *)

let solutions_equal prog (a : Solver.result) (b : Solver.result) =
  List.for_all
    (fun (p : Prog.proc) ->
      let ma = Hashtbl.find_opt a.vals p.pname
      and mb = Hashtbl.find_opt b.vals p.pname in
      match (ma, mb) with
      | Some ma, Some mb -> Prog.Param_map.equal Ipcp_analysis.Const_lattice.equal ma mb
      | None, None -> true
      | _ -> false)
    prog.Prog.procs

let binding_matches_iterative prog =
  let t = Driver.analyze Config.polynomial_with_mod prog in
  let global_keys = List.map Prog.global_key (Prog.all_globals prog) in
  let b = Binding_solver.run t.cg ~site_jfs:t.site_jfs ~global_keys in
  solutions_equal prog t.solution b

let test_binding_solver_on_suite () =
  List.iter
    (fun (e : Registry.entry) ->
      if not (binding_matches_iterative (Registry.program e)) then
        fail (e.name ^ ": binding solver disagrees with iterative solver"))
    Registry.entries

let prop_binding_solver_equivalence =
  QCheck2.Test.make ~name:"binding solver ≡ iterative solver" ~count:80
    (QCheck2.Gen.int_range 1 10_000) (fun seed ->
      let prog =
        Workload.generate_resolved
          {
            Workload.default_spec with
            seed;
            num_procs = 3 + (seed mod 5);
            num_globals = seed mod 4;
          }
      in
      binding_matches_iterative prog)

let test_binding_solver_fewer_evaluations () =
  (* the sparse formulation re-evaluates only dependent jump functions *)
  let prog = Registry.program (Option.get (Registry.find "ocean")) in
  let t = Driver.analyze Config.polynomial_with_mod prog in
  let global_keys = List.map Prog.global_key (Prog.all_globals prog) in
  let b = Binding_solver.run t.cg ~site_jfs:t.site_jfs ~global_keys in
  check Alcotest.bool "binding does not evaluate more" true
    (b.stats.jf_evaluations <= t.solution.stats.jf_evaluations)

(* ------------------------------------------------------------------ *)
(* Cloning *)

let cloning_src =
  "program main\n\
   call a\n\
   call b\n\
   end\n\
   subroutine a\ncall s(3)\nend\n\
   subroutine b\ncall s(5)\nend\n\
   subroutine s(w)\ninteger w\nprint *, w, w * 2\nend\n"

let test_cloning_recovers_constants () =
  let prog = resolve cloning_src in
  let before = Substitute.count Config.polynomial_with_mod prog in
  let r = Cloning.clone prog in
  check Alcotest.int "one clone" 1 r.clones_made;
  let after = Substitute.count Config.polynomial_with_mod r.cloned in
  check Alcotest.bool "more constants after cloning" true (after > before);
  (* all four uses of w become constant *)
  check Alcotest.int "all uses substituted" 4 after

let test_cloning_preserves_behaviour () =
  let prog = resolve cloning_src in
  let r = Cloning.clone prog in
  let r1 = Ipcp_interp.Interp.run ~trace_entries:false prog in
  let r2 = Ipcp_interp.Interp.run ~trace_entries:false r.cloned in
  check (Alcotest.list Alcotest.string) "same output" r1.outputs r2.outputs

let test_cloning_noop_when_agreeing () =
  let prog =
    resolve
      "program main\ncall s(3)\ncall s(3)\nend\nsubroutine s(w)\ninteger \
       w\nprint *, w\nend\n"
  in
  let r = Cloning.clone prog in
  check Alcotest.int "no clones" 0 r.clones_made

let test_cloning_respects_cap () =
  let prog =
    resolve
      "program main\ncall s(1)\ncall s(2)\ncall s(3)\ncall s(4)\ncall \
       s(5)\ncall s(6)\nend\nsubroutine s(w)\ninteger w\nprint *, w\nend\n"
  in
  let r = Cloning.clone ~max_clones_per_proc:3 prog in
  check Alcotest.bool "at most 2 clones beyond the original" true
    (r.clones_made <= 2)

let prop_cloning_preserves_behaviour =
  QCheck2.Test.make ~name:"cloning preserves printed output" ~count:40
    (QCheck2.Gen.int_range 1 10_000) (fun seed ->
      let prog =
        Workload.generate_resolved { Workload.default_spec with seed }
      in
      let cloned, _ = Cloning.clone_to_fixpoint prog in
      let r1 = Ipcp_interp.Interp.run ~fuel:500_000 ~trace_entries:false prog in
      let r2 = Ipcp_interp.Interp.run ~fuel:500_000 ~trace_entries:false cloned in
      match (r1.outcome, r2.outcome) with
      | Ipcp_interp.Interp.Finished, Ipcp_interp.Interp.Finished ->
        r1.outputs = r2.outputs
      | Out_of_fuel, _ | _, Out_of_fuel -> true
      | _, _ -> false)

let prop_cloning_monotone =
  QCheck2.Test.make ~name:"cloning never loses constants" ~count:40
    (QCheck2.Gen.int_range 1 10_000) (fun seed ->
      let prog =
        Workload.generate_resolved { Workload.default_spec with seed }
      in
      let before = Substitute.count Config.polynomial_with_mod prog in
      let cloned, _ = Cloning.clone_to_fixpoint prog in
      let after = Substitute.count Config.polynomial_with_mod cloned in
      after >= before)

(* ------------------------------------------------------------------ *)
(* Aliasing checker *)

let test_alias_same_var_twice () =
  let prog =
    resolve
      "program main\ninteger n\nn = 1\ncall s(n, n)\nprint *, n\nend\n\
       subroutine s(a, b)\ninteger a, b\na = b + 1\nend\n"
  in
  match Alias_check.check prog with
  | [ v ] ->
    check Alcotest.string "caller" "main" v.v_caller;
    check Alcotest.string "callee" "s" v.v_callee
  | vs -> fail (Fmt.str "expected 1 violation, got %d" (List.length vs))

let test_alias_same_var_twice_unmodified_ok () =
  let prog =
    resolve
      "program main\ninteger n\nn = 1\ncall s(n, n)\nend\n\
       subroutine s(a, b)\ninteger a, b\nprint *, a + b\nend\n"
  in
  check Alcotest.int "no violations" 0 (List.length (Alias_check.check prog))

let test_alias_global_passed_to_modifying_callee () =
  let prog =
    resolve
      "program main\ncommon /c/ g\ninteger g\ng = 1\ncall s(g)\nend\n\
       subroutine s(a)\ninteger a\ncommon /c/ h\ninteger h\nh = 2\nprint *, \
       a\nend\n"
  in
  check Alcotest.int "one violation" 1 (List.length (Alias_check.check prog))

let test_alias_global_into_modified_formal () =
  let prog =
    resolve
      "program main\ncommon /c/ g\ninteger g\ng = 1\ncall s(g)\nend\n\
       subroutine s(a)\ninteger a\ncommon /c/ h\ninteger h\na = h + 1\nend\n"
  in
  check Alcotest.bool "violations found" true (Alias_check.check prog <> [])

let test_alias_global_harmless () =
  let prog =
    resolve
      "program main\ncommon /c/ g\ninteger g\ng = 1\ncall s(g)\nend\n\
       subroutine s(a)\ninteger a\nprint *, a\nend\n"
  in
  check Alcotest.int "no violations" 0 (List.length (Alias_check.check prog))

let test_alias_transitive_modification () =
  let prog =
    resolve
      "program main\ninteger n\nn = 1\ncall outer(n, n)\nend\n\
       subroutine outer(a, b)\ninteger a, b\ncall inner(a)\nprint *, b\nend\n\
       subroutine inner(x)\ninteger x\nx = 9\nend\n"
  in
  check Alcotest.bool "transitive violation found" true
    (Alias_check.check prog <> [])

let test_alias_do_variable_by_ref () =
  let prog =
    resolve
      "program main\ninteger i\ndo i = 1, 5\ncall bump(i)\nend do\nend\n\
       subroutine bump(x)\ninteger x\nx = x + 1\nend\n"
  in
  check Alcotest.bool "do-variable by-ref violation" true
    (Alias_check.check prog <> [])

let test_alias_do_variable_read_only_ok () =
  let prog =
    resolve
      "program main\ninteger i\ndo i = 1, 5\ncall look(i)\nend do\nend\n\
       subroutine look(x)\ninteger x\nprint *, x\nend\n"
  in
  check Alcotest.int "harmless do-variable arg" 0
    (List.length (Alias_check.check prog))

let test_suite_programs_conform () =
  List.iter
    (fun (e : Registry.entry) ->
      match Alias_check.check (Registry.program e) with
      | [] -> ()
      | vs ->
        fail
          (Fmt.str "%s has aliasing violations:@.%a" e.name
             (Fmt.list Alias_check.pp_violation) vs))
    Registry.entries

let prop_generated_programs_conform =
  QCheck2.Test.make ~name:"generated workloads are alias-free" ~count:80
    (QCheck2.Gen.int_range 1 10_000) (fun seed ->
      let prog =
        Workload.generate_resolved
          { Workload.default_spec with seed; num_globals = seed mod 4 }
      in
      Alias_check.check prog = [])

let suite =
  [
    ("binding solver on suite", `Quick, test_binding_solver_on_suite);
    ("binding solver sparse", `Quick, test_binding_solver_fewer_evaluations);
    QCheck_alcotest.to_alcotest prop_binding_solver_equivalence;
    ("cloning recovers constants", `Quick, test_cloning_recovers_constants);
    ("cloning preserves behaviour", `Quick, test_cloning_preserves_behaviour);
    ("cloning noop when agreeing", `Quick, test_cloning_noop_when_agreeing);
    ("cloning respects cap", `Quick, test_cloning_respects_cap);
    QCheck_alcotest.to_alcotest prop_cloning_preserves_behaviour;
    QCheck_alcotest.to_alcotest prop_cloning_monotone;
    ("alias: same var twice", `Quick, test_alias_same_var_twice);
    ("alias: same var twice unmodified", `Quick,
      test_alias_same_var_twice_unmodified_ok);
    ("alias: global to modifying callee", `Quick,
      test_alias_global_passed_to_modifying_callee);
    ("alias: global into modified formal", `Quick,
      test_alias_global_into_modified_formal);
    ("alias: harmless global", `Quick, test_alias_global_harmless);
    ("alias: transitive modification", `Quick, test_alias_transitive_modification);
    ("alias: do-variable by ref", `Quick, test_alias_do_variable_by_ref);
    ("alias: do-variable read-only", `Quick, test_alias_do_variable_read_only_ok);
    ("alias: suite programs conform", `Quick, test_suite_programs_conform);
    QCheck_alcotest.to_alcotest prop_generated_programs_conform;
  ]
