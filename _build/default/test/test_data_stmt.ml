(* Tests for FORTRAN [data] statements: parsing, semantic restrictions,
   load-time initialization in the interpreter, and — the interesting part —
   how the analyzer exploits load-time values as initial-memory facts. *)

open Ipcp_frontend
open Ipcp_core

let check = Alcotest.check
let fail = Alcotest.fail

let resolve = Sema.parse_and_resolve

let expect_sema_error src =
  match resolve src with
  | exception Loc.Error _ -> ()
  | _ -> fail "expected a semantic error"

let outputs src = (Ipcp_interp.Interp.run (resolve src)).Ipcp_interp.Interp.outputs

let const_of (t : Driver.t) proc_name param_name : int option =
  let proc = Prog.find_proc_exn t.prog proc_name in
  Solver.constants_of t.solution proc_name
  |> List.find_map (fun (param, c) ->
         if Prog.param_name t.prog proc param = param_name then Some c else None)

(* ------------------------------------------------------------------ *)
(* Parsing and semantic checks *)

let test_parse_shapes () =
  let p =
    resolve
      "program t\ninteger n, a(4)\ncommon /c/ g\ninteger g\ndata n /5/, g \
       /7/\ndata a /4*0/\nprint *, n\nend\n"
  in
  let main = Prog.find_proc_exn p "t" in
  check Alcotest.int "three data inits" 3 (List.length main.pdata)

let test_parse_negative_and_mixed () =
  let p =
    resolve
      "program t\ninteger n\nreal x\nlogical q\ndata n /-3/, x /2.5/, q \
       /.true./\nprint *, n\nend\n"
  in
  let main = Prog.find_proc_exn p "t" in
  check Alcotest.int "three inits" 3 (List.length main.pdata)

let test_sema_rejects_formal () =
  expect_sema_error
    "program t\ncall s(1)\nend\nsubroutine s(x)\ninteger x\ndata x \
     /5/\nprint *, x\nend\n"

let test_sema_rejects_nonmain_local () =
  expect_sema_error
    "program t\ncall s\nend\nsubroutine s\ninteger k\ndata k /5/\nprint *, \
     k\nend\n"

let test_sema_rejects_double_init () =
  expect_sema_error "program t\ninteger n\ndata n /1/\ndata n /2/\nend\n"

let test_sema_rejects_double_init_across_units () =
  expect_sema_error
    "program t\ncommon /c/ g\ninteger g\ndata g /1/\nend\nsubroutine \
     s\ncommon /c/ h\ninteger h\ndata h /2/\nend\n"

let test_sema_rejects_wrong_count () =
  expect_sema_error "program t\ninteger a(3)\ndata a /2*0/\nend\n"

let test_sema_rejects_type_mismatch () =
  expect_sema_error "program t\ninteger n\ndata n /.true./\nend\n"

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let test_interp_scalar_init () =
  check (Alcotest.list Alcotest.string) "scalar data"
    [ "5 7" ]
    (outputs
       "program t\ninteger n\ncommon /c/ g\ninteger g\ndata n /5/, g \
        /7/\nprint *, n, g\nend\n")

let test_interp_array_fill () =
  check (Alcotest.list Alcotest.string) "array data"
    [ "9 9 0 4" ]
    (outputs
       "program t\ninteger a(4)\ndata a /2*9, 0, 4/\nprint *, a(1), a(2), \
        a(3), a(4)\nend\n")

let test_interp_global_visible_in_callee () =
  check (Alcotest.list Alcotest.string) "callee sees data value"
    [ "12" ]
    (outputs
       "program t\ncommon /c/ g\ninteger g\ndata g /12/\ncall s\nend\n\
        subroutine s\ncommon /c/ h\ninteger h\nprint *, h\nend\n")

let test_interp_data_in_subunit_applies () =
  (* a data statement on a common in a subroutine still initializes at load
     time, even if the subroutine never runs *)
  check (Alcotest.list Alcotest.string) "block-data style init"
    [ "3" ]
    (outputs
       "program t\ncommon /c/ g\ninteger g\nprint *, g\nend\n\
        subroutine blockd\ncommon /c/ h\ninteger h\ndata h /3/\nend\n")

(* ------------------------------------------------------------------ *)
(* Analysis: load-time values as initial-memory facts *)

let test_analysis_data_global_propagates () =
  (* no init routine at all: the global's constancy comes purely from data *)
  let t =
    Driver.analyze Config.default
      (resolve
         "program t\ncommon /c/ g\ninteger g\ndata g /64/\ncall use\nend\n\
          subroutine use\ncommon /c/ h\ninteger h\nprint *, h, h * 2\nend\n")
  in
  match const_of t "use" "h" with
  | Some 64 -> ()
  | other -> fail (Fmt.str "expected use.h = 64, got %a" Fmt.(option int) other)

let test_analysis_data_overwritten_is_bottom () =
  (* main overwrites the data value with unknown input before the call *)
  let t =
    Driver.analyze Config.default
      (resolve
         "program t\ncommon /c/ g\ninteger g\ndata g /64/\nread *, g\ncall \
          use\nend\n\
          subroutine use\ncommon /c/ h\ninteger h\nprint *, h\nend\n")
  in
  match const_of t "use" "h" with
  | None -> ()
  | Some c -> fail (Fmt.str "use.h should be unknown, got %d" c)

let test_analysis_data_local_flows_to_callee () =
  let t =
    Driver.analyze Config.default
      (resolve
         "program t\ninteger nsize\ndata nsize /48/\ncall work(nsize)\nend\n\
          subroutine work(n)\ninteger n\nprint *, n, n / 2\nend\n")
  in
  match const_of t "work" "n" with
  | Some 48 -> ()
  | other -> fail (Fmt.str "expected work.n = 48, got %a" Fmt.(option int) other)

let test_analysis_data_substitution_sound () =
  let prog =
    resolve
      "program t\ninteger nsize\ncommon /c/ g\ninteger g\ndata nsize /48/, g \
       /6/\ncall work(nsize)\nprint *, g + nsize\nend\n\
       subroutine work(n)\ninteger n\ncommon /c/ h\ninteger h\nprint *, n + \
       h, n - h\nend\n"
  in
  let t = Driver.analyze Config.default prog in
  let prog', stats = Substitute.apply t in
  check Alcotest.bool "substitutions happened" true (stats.Substitute.total > 0);
  let r1 = Ipcp_interp.Interp.run ~trace_entries:false prog in
  let r2 = Ipcp_interp.Interp.run ~trace_entries:false prog' in
  check (Alcotest.list Alcotest.string) "behaviour preserved" r1.outputs r2.outputs

let test_data_roundtrip_through_printer () =
  let prog =
    resolve
      "program t\ninteger n, a(3)\ndata n /5/\ndata a /1, 2*7/\nprint *, n, \
       a(1), a(2), a(3)\nend\n"
  in
  let printed = Pretty.program_to_string prog in
  let prog2 =
    try resolve printed
    with Loc.Error (l, m) ->
      fail (Fmt.str "re-resolve failed at %a: %s@.%s" Loc.pp l m printed)
  in
  let r1 = Ipcp_interp.Interp.run ~trace_entries:false prog in
  let r2 = Ipcp_interp.Interp.run ~trace_entries:false prog2 in
  check (Alcotest.list Alcotest.string) "same output" r1.outputs r2.outputs

let suite =
  [
    ("parse shapes", `Quick, test_parse_shapes);
    ("parse negative and mixed types", `Quick, test_parse_negative_and_mixed);
    ("sema rejects formals", `Quick, test_sema_rejects_formal);
    ("sema rejects non-main locals", `Quick, test_sema_rejects_nonmain_local);
    ("sema rejects double init", `Quick, test_sema_rejects_double_init);
    ("sema rejects double init across units", `Quick,
      test_sema_rejects_double_init_across_units);
    ("sema rejects wrong count", `Quick, test_sema_rejects_wrong_count);
    ("sema rejects type mismatch", `Quick, test_sema_rejects_type_mismatch);
    ("interp scalar init", `Quick, test_interp_scalar_init);
    ("interp array fill", `Quick, test_interp_array_fill);
    ("interp global visible in callee", `Quick, test_interp_global_visible_in_callee);
    ("interp block-data style init", `Quick, test_interp_data_in_subunit_applies);
    ("analysis: data global propagates", `Quick,
      test_analysis_data_global_propagates);
    ("analysis: overwritten data is bottom", `Quick,
      test_analysis_data_overwritten_is_bottom);
    ("analysis: data local flows to callee", `Quick,
      test_analysis_data_local_flows_to_callee);
    ("analysis: substitution stays sound", `Quick,
      test_analysis_data_substitution_sound);
    ("printer round-trips data", `Quick, test_data_roundtrip_through_printer);
  ]
