(* Unit tests for the reference interpreter: FORTRAN-style semantics
   (by-reference argument passing, commons, column-major arrays, integer
   arithmetic), tracing, and failure modes. *)

open Ipcp_frontend
open Ipcp_interp

let check = Alcotest.check
let fail = Alcotest.fail

let run ?input ?fuel src =
  Interp.run ?input ?fuel (Sema.parse_and_resolve src)

let outputs ?input ?fuel src = (run ?input ?fuel src).Interp.outputs

let expect_outputs ?input src expected =
  check (Alcotest.list Alcotest.string) "outputs" expected (outputs ?input src)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_failure src fragment =
  match (run src).Interp.outcome with
  | Interp.Failed m ->
    if not (contains ~sub:fragment m) then
      fail (Fmt.str "expected failure mentioning %S, got %S" fragment m)
  | Finished -> fail "expected a runtime failure, program finished"
  | Out_of_fuel -> fail "expected a runtime failure, ran out of fuel"

let test_arith () =
  expect_outputs "program t\nprint *, 2 + 3 * 4, (2 + 3) * 4, 2 ** 5\nend\n"
    [ "14 20 32" ]

let test_integer_division_truncates () =
  expect_outputs "program t\nprint *, 7 / 2, -7 / 2, 7 / -2\nend\n"
    [ "3 -3 -3" ]

let test_real_arithmetic () =
  expect_outputs "program t\nx = 1.5\nprint *, x * 2.0 + 1.0\nend\n" [ "4" ]

let test_mixed_promotion () =
  expect_outputs "program t\nx = 3 / 2.0\nprint *, x\nend\n" [ "1.5" ]

let test_real_to_int_truncation () =
  expect_outputs "program t\nn = 2.9\nm = -2.9\nprint *, n, m\nend\n" [ "2 -2" ]

let test_by_reference_modification () =
  expect_outputs
    "program t\ninteger n\nn = 1\ncall bump(n)\ncall bump(n)\nprint *, \
     n\nend\nsubroutine bump(x)\ninteger x\nx = x + 1\nend\n"
    [ "3" ]

let test_expression_actual_copies () =
  (* modifying a temp bound to an expression actual must not leak back *)
  expect_outputs
    "program t\ninteger n\nn = 1\ncall bump(n + 0)\nprint *, n\nend\n\
     subroutine bump(x)\ninteger x\nx = x + 1\nend\n"
    [ "1" ]

let test_common_shared_storage () =
  expect_outputs
    "program t\ncommon /c/ g\ninteger g\ng = 1\ncall s\nprint *, g\nend\n\
     subroutine s\ncommon /c/ h\ninteger h\nh = h + 10\nend\n"
    [ "11" ]

let test_array_element_aliasing () =
  expect_outputs
    "program t\ninteger a(3)\na(1) = 0\na(2) = 0\na(3) = 0\ncall set(a(2))\n\
     print *, a(1), a(2), a(3)\nend\n\
     subroutine set(x)\ninteger x\nx = 9\nend\n"
    [ "0 9 0" ]

let test_whole_array_passing () =
  expect_outputs
    "program t\ninteger a(3), i\ndo i = 1, 3\na(i) = 0\nend do\ncall \
     fill(a, 3)\nprint *, a(1), a(2), a(3)\nend\n\
     subroutine fill(b, n)\ninteger b(3), n, i\ndo i = 1, n\nb(i) = i * \
     10\nend do\nend\n"
    [ "10 20 30" ]

let test_column_major_layout () =
  (* a(i,j): first subscript varies fastest; sequence association exposes
     the layout *)
  expect_outputs
    "program t\ninteger a(2, 2), i, j\ndo j = 1, 2\ndo i = 1, 2\na(i, j) = i \
     * 10 + j\nend do\nend do\ncall peek(a(1, 1))\nend\n\
     subroutine peek(v)\ninteger v(4)\nprint *, v(1), v(2), v(3), v(4)\nend\n"
    [ "11 21 12 22" ]

let test_function_call_and_result () =
  expect_outputs
    "program t\nprint *, sq(5) + sq(2)\nend\nfunction sq(x)\ninteger sq, \
     x\nsq = x * x\nend\n"
    [ "29" ]

let test_recursion () =
  expect_outputs
    "program t\nprint *, fact(5)\nend\nfunction fact(n)\ninteger fact, n\nif \
     (n .le. 1) then\nfact = 1\nelse\nfact = n * fact(n - 1)\nend if\nend\n"
    [ "120" ]

let test_do_loop_semantics () =
  (* bounds evaluated once; variable left at first failing value *)
  expect_outputs
    "program t\ninteger i, n\nn = 3\ndo i = 1, n\nn = 10\nend do\nprint *, i, \
     n\nend\n"
    [ "4 10" ]

let test_do_loop_step_negative () =
  expect_outputs
    "program t\ninteger i, s\ns = 0\ndo i = 10, 1, -3\ns = s + i\nend \
     do\nprint *, s, i\nend\n"
    [ "22 -2" ]

let test_do_loop_zero_trip () =
  expect_outputs
    "program t\ninteger i, s\ns = 0\ndo i = 5, 1\ns = s + 1\nend do\nprint *, \
     s\nend\n"
    [ "0" ]

let test_do_while () =
  expect_outputs
    "program t\ninteger i\ni = 1\ndo while (i .lt. 100)\ni = i * 3\nend \
     do\nprint *, i\nend\n"
    [ "243" ]

let test_goto_loop () =
  expect_outputs
    "program t\ninteger n\nn = 0\n10 n = n + 1\nif (n .lt. 4) goto 10\nprint \
     *, n\nend\n"
    [ "4" ]

let test_goto_out_of_loop () =
  expect_outputs
    "program t\ninteger i\ndo i = 1, 100\nif (i .eq. 3) goto 99\nend do\n99 \
     print *, i\nend\n"
    [ "3" ]

let test_stop_terminates () =
  expect_outputs "program t\nprint *, 1\nstop\nprint *, 2\nend\n" [ "1" ]

let test_return_from_subroutine () =
  expect_outputs
    "program t\ncall s(1)\nend\nsubroutine s(x)\ninteger x\nif (x .eq. 1) \
     then\nprint *, 'early'\nreturn\nend if\nprint *, 'late'\nend\n"
    [ "early" ]

let test_read_consumes_input () =
  expect_outputs ~input:[ 42; 7 ]
    "program t\ninteger a, b\nread *, a, b\nprint *, a + b\nend\n" [ "49" ]

let test_read_exhausted_gives_zero () =
  expect_outputs ~input:[]
    "program t\ninteger a\nread *, a\nprint *, a\nend\n" [ "0" ]

let test_logical_values () =
  expect_outputs
    "program t\nlogical p, q\np = .true.\nq = 1 .gt. 2\nprint *, p, q, p \
     .and. .not. q\nend\n"
    [ "T F T" ]

let test_uninitialized_read_fails () =
  expect_failure "program t\ninteger n\nprint *, n\nend\n" "uninitialized"

let test_division_by_zero_fails () =
  expect_failure "program t\ninteger n\nn = 0\nprint *, 1 / n\nend\n"
    "division by zero"

let test_bounds_check_fails () =
  expect_failure
    "program t\ninteger a(3), i\ni = 5\na(i) = 1\nend\n" "out of bounds"

let test_out_of_fuel () =
  let r = run ~fuel:1000 "program t\nn = 0\n10 n = n + 1\ngoto 10\nend\n" in
  match r.Interp.outcome with
  | Interp.Out_of_fuel -> ()
  | _ -> fail "expected fuel exhaustion"

let test_entry_snapshots () =
  let r =
    run
      "program t\ncommon /c/ g\ninteger g\ng = 5\ncall s(1)\ncall \
       s(2)\nend\nsubroutine s(x)\ninteger x\ncommon /c/ h\ninteger h\nprint \
       *, x + h\nend\n"
  in
  let entries =
    List.filter (fun (e : Interp.entry_snapshot) -> e.es_proc = "s") r.entries
  in
  check Alcotest.int "two entries" 2 (List.length entries);
  match entries with
  | [ e1; e2 ] ->
    check Alcotest.bool "first formal 1" true
      (List.assoc 0 e1.es_formals = Some (Interp.Vint 1));
    check Alcotest.bool "second formal 2" true
      (List.assoc 0 e2.es_formals = Some (Interp.Vint 2));
    check Alcotest.bool "global seen" true
      (List.assoc "c:0" e1.es_globals = Some (Interp.Vint 5))
  | _ -> fail "unexpected entries"

let test_int_pow_negative_exponent () =
  expect_outputs
    "program t\ninteger k\nk = -1\nprint *, 2 ** k, 1 ** k, (-1) ** k\nend\n"
    [ "0 1 -1" ]

let suite =
  [
    ("arith precedence", `Quick, test_arith);
    ("integer division truncates", `Quick, test_integer_division_truncates);
    ("real arithmetic", `Quick, test_real_arithmetic);
    ("mixed promotion", `Quick, test_mixed_promotion);
    ("real to int truncation", `Quick, test_real_to_int_truncation);
    ("by-reference modification", `Quick, test_by_reference_modification);
    ("expression actuals copy", `Quick, test_expression_actual_copies);
    ("common shared storage", `Quick, test_common_shared_storage);
    ("array element aliasing", `Quick, test_array_element_aliasing);
    ("whole array passing", `Quick, test_whole_array_passing);
    ("column-major layout", `Quick, test_column_major_layout);
    ("function result", `Quick, test_function_call_and_result);
    ("recursion", `Quick, test_recursion);
    ("do loop semantics", `Quick, test_do_loop_semantics);
    ("do loop negative step", `Quick, test_do_loop_step_negative);
    ("do loop zero trip", `Quick, test_do_loop_zero_trip);
    ("do while", `Quick, test_do_while);
    ("goto loop", `Quick, test_goto_loop);
    ("goto out of loop", `Quick, test_goto_out_of_loop);
    ("stop terminates", `Quick, test_stop_terminates);
    ("early return", `Quick, test_return_from_subroutine);
    ("read consumes input", `Quick, test_read_consumes_input);
    ("read exhausted", `Quick, test_read_exhausted_gives_zero);
    ("logical values", `Quick, test_logical_values);
    ("uninitialized read fails", `Quick, test_uninitialized_read_fails);
    ("division by zero fails", `Quick, test_division_by_zero_fails);
    ("bounds check fails", `Quick, test_bounds_check_fails);
    ("fuel exhaustion", `Quick, test_out_of_fuel);
    ("entry snapshots", `Quick, test_entry_snapshots);
    ("integer power negative exponent", `Quick, test_int_pow_negative_exponent);
  ]
