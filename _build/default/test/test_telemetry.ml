(* Unit tests for the telemetry subsystem: span nesting and ordering,
   counter accumulation, distributions, zero-cost-when-disabled behaviour,
   and JSON export round-trips through the bundled parser. *)

open Ipcp_telemetry

let check = Alcotest.check

(* A deterministic clock: every reading advances 10 ns. *)
let ticking_clock () =
  let t = ref 0 in
  fun () ->
    t := !t + 10;
    !t

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_disabled_is_noop () =
  (* no reporter installed: recording calls must be invisible no-ops *)
  let r = Telemetry.span "ghost" (fun () -> 41 + 1) in
  check Alcotest.int "span returns body value" 42 r;
  Telemetry.incr "ghost.counter";
  Telemetry.observe "ghost.dist" 7;
  check Alcotest.bool "not enabled" false (Telemetry.enabled ())

let test_span_nesting () =
  let t = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter t (fun () ->
      Telemetry.span "outer" (fun () ->
          Telemetry.span "inner_a" ignore;
          Telemetry.span "inner_b" ignore));
  match Telemetry.spans t with
  | [ outer ] ->
    check Alcotest.string "outer name" "outer" outer.sp_name;
    check (Alcotest.list Alcotest.string) "children in entry order"
      [ "inner_a"; "inner_b" ]
      (List.map (fun s -> s.Telemetry.sp_name) outer.sp_children);
    check Alcotest.bool "outer spans its children" true
      (outer.sp_ns
      >= List.fold_left
           (fun acc s -> acc + s.Telemetry.sp_ns)
           0 outer.sp_children)
  | spans -> Alcotest.failf "expected one top-level span, got %d" (List.length spans)

let test_span_aggregation () =
  (* the same name under the same parent aggregates, not duplicates *)
  let t = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter t (fun () ->
      for _ = 1 to 3 do
        Telemetry.span "phase" ignore
      done);
  match Telemetry.spans t with
  | [ phase ] ->
    check Alcotest.int "three calls" 3 phase.sp_calls;
    check Alcotest.int "10 ns per call" 30 phase.sp_ns
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_span_ordering_top_level () =
  let t = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter t (fun () ->
      Telemetry.span "first" ignore;
      Telemetry.span "second" ignore;
      Telemetry.span "first" ignore);
  check (Alcotest.list Alcotest.string) "first-entered order, aggregated"
    [ "first"; "second" ]
    (List.map (fun s -> s.Telemetry.sp_name) (Telemetry.spans t))

let test_span_survives_exception () =
  let t = Telemetry.create ~clock:(ticking_clock ()) () in
  (try
     Telemetry.with_reporter t (fun () ->
         Telemetry.span "outer" (fun () ->
             Telemetry.span "thrower" (fun () -> failwith "boom")))
   with Failure _ -> ());
  (* both spans closed despite the exception; a later span nests correctly *)
  Telemetry.with_reporter t (fun () -> Telemetry.span "after" ignore);
  let names = List.map (fun s -> s.Telemetry.sp_name) (Telemetry.spans t) in
  check (Alcotest.list Alcotest.string) "stack unwound" [ "outer"; "after" ]
    names

let test_reporter_restored () =
  let t = Telemetry.create () in
  Telemetry.with_reporter t (fun () ->
      check Alcotest.bool "enabled inside" true (Telemetry.enabled ()));
  check Alcotest.bool "disabled outside" false (Telemetry.enabled ())

(* ------------------------------------------------------------------ *)
(* Counters and distributions *)

let test_counter_accumulation () =
  let t = Telemetry.create () in
  Telemetry.with_reporter t (fun () ->
      Telemetry.incr "a";
      Telemetry.add "a" 4;
      Telemetry.add "b" 2;
      Telemetry.incr "a");
  check (Alcotest.option Alcotest.int) "a" (Some 6) (Telemetry.counter t "a");
  check (Alcotest.option Alcotest.int) "b" (Some 2) (Telemetry.counter t "b");
  check (Alcotest.option Alcotest.int) "untouched" None (Telemetry.counter t "c");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted" [ ("a", 6); ("b", 2) ] (Telemetry.counters t)

let test_distribution_order () =
  let t = Telemetry.create () in
  Telemetry.with_reporter t (fun () ->
      List.iter (Telemetry.observe "d") [ 5; 1; 9 ]);
  check (Alcotest.list Alcotest.int) "recording order" [ 5; 1; 9 ]
    (Telemetry.distribution t "d")

(* ------------------------------------------------------------------ *)
(* Domains and merging *)

let test_fresh_domain_has_no_sink () =
  (* the reporter is domain-local: a spawned domain starts disabled even
     while the parent is inside with_reporter *)
  let t = Telemetry.create () in
  Telemetry.with_reporter t (fun () ->
      check Alcotest.bool "enabled in parent" true (Telemetry.enabled ());
      let d = Domain.spawn (fun () -> Telemetry.enabled ()) in
      check Alcotest.bool "fresh domain disabled" false (Domain.join d));
  check
    (Alcotest.option Alcotest.int)
    "nothing leaked into the parent collector" None
    (Telemetry.counter t "ghost")

let test_merge_aggregates () =
  let src = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter src (fun () ->
      Telemetry.span "work" (fun () -> Telemetry.span "sub" ignore);
      Telemetry.add "c" 3;
      Telemetry.observe "d" 7);
  let into = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter into (fun () ->
      Telemetry.span "work" ignore;
      Telemetry.add "c" 1;
      Telemetry.observe "d" 5);
  Telemetry.merge ~into src;
  check (Alcotest.option Alcotest.int) "counters add" (Some 4)
    (Telemetry.counter into "c");
  check (Alcotest.list Alcotest.int) "distributions concatenate" [ 5; 7 ]
    (Telemetry.distribution into "d");
  match Telemetry.spans into with
  | [ work ] ->
    check Alcotest.string "span name" "work" work.sp_name;
    check Alcotest.int "calls aggregate" 2 work.sp_calls;
    check (Alcotest.list Alcotest.string) "children grafted" [ "sub" ]
      (List.map (fun s -> s.Telemetry.sp_name) work.sp_children)
  | spans ->
    Alcotest.failf "expected one top-level span, got %d" (List.length spans)

let test_merge_under () =
  let src = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter src (fun () -> Telemetry.span "task" ignore);
  let into = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.merge ~under:"pool:domain-0" ~into src;
  match Telemetry.spans into with
  | [ pool ] ->
    check Alcotest.string "grafted under the named child" "pool:domain-0"
      pool.sp_name;
    check (Alcotest.list Alcotest.string) "source spans inside" [ "task" ]
      (List.map (fun s -> s.Telemetry.sp_name) pool.sp_children)
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_worker_domains_merge_race_free () =
  (* the engine's protocol by hand: each worker collects into its own
     domain-local reporter, and the parent merges after join — every
     worker's counters and spans must land exactly once *)
  let parent = Telemetry.create () in
  Telemetry.with_reporter parent (fun () ->
      let workers =
        List.init 4 (fun i ->
            Domain.spawn (fun () ->
                let t = Telemetry.create () in
                Telemetry.with_reporter t (fun () ->
                    Telemetry.span "stage" ignore;
                    Telemetry.add "worker.items" (i + 1));
                t))
      in
      List.iteri
        (fun i d ->
          Telemetry.merge
            ~under:(Printf.sprintf "pool:domain-%d" i)
            ~into:parent (Domain.join d))
        workers);
  check
    (Alcotest.option Alcotest.int)
    "counters from every domain, once each" (Some 10)
    (Telemetry.counter parent "worker.items");
  let pools =
    List.map (fun s -> s.Telemetry.sp_name) (Telemetry.spans parent)
  in
  check (Alcotest.list Alcotest.string) "one span group per domain"
    [ "pool:domain-0"; "pool:domain-1"; "pool:domain-2"; "pool:domain-3" ]
    pools;
  List.iter
    (fun s ->
      check (Alcotest.list Alcotest.string)
        (s.Telemetry.sp_name ^ " carries the worker's spans")
        [ "stage" ]
        (List.map (fun c -> c.Telemetry.sp_name) s.Telemetry.sp_children))
    (Telemetry.spans parent)

(* ------------------------------------------------------------------ *)
(* JSON *)

let json = Alcotest.testable Json.pp Json.equal

let roundtrip doc =
  match Json.of_string (Json.to_string doc) with
  | Ok doc' -> doc'
  | Error m -> Alcotest.failf "reparse failed: %s" m

let test_json_roundtrip_values () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("xs", Json.Arr [ Json.Int 1; Json.Arr []; Json.Obj [] ]);
      ]
  in
  check json "compact round-trip" doc (roundtrip doc);
  (match Json.of_string (Json.to_string_pretty doc) with
  | Ok doc' -> check json "pretty round-trip" doc doc'
  | Error m -> Alcotest.failf "pretty reparse failed: %s" m);
  (* malformed inputs are rejected, not crashed on *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "\"unterminated"; "{} trailing"; "nul"; "" ]

let test_profile_export_roundtrip () =
  let t = Telemetry.create ~clock:(ticking_clock ()) () in
  Telemetry.with_reporter t (fun () ->
      Telemetry.span "analyze" (fun () ->
          Telemetry.span "stage1:return_jfs" ignore;
          Telemetry.span "stage2:forward_jfs" ignore);
      Telemetry.add "solver.meets" 7;
      Telemetry.observe "jf.site_cost" 3;
      Telemetry.observe "jf.site_cost" 5);
  let doc = Telemetry.to_json t in
  let doc' = roundtrip doc in
  check json "export round-trips" doc doc';
  check
    (Alcotest.option Alcotest.string)
    "schema tag"
    (Some Telemetry.schema_version)
    (Option.bind (Json.member "schema" doc') Json.to_string_opt);
  check
    (Alcotest.option Alcotest.int)
    "counter exported" (Some 7)
    (Option.bind (Json.path [ "counters"; "solver.meets" ] doc') Json.to_int_opt);
  check
    (Alcotest.option Alcotest.int)
    "distribution count" (Some 2)
    (Option.bind
       (Json.path [ "distributions"; "jf.site_cost"; "count" ] doc')
       Json.to_int_opt);
  (* span tree survives: analyze has both stages as children *)
  let stage_names =
    match Option.bind (Json.member "spans" doc') Json.to_list_opt with
    | Some (analyze :: _) ->
      Option.bind (Json.member "children" analyze) Json.to_list_opt
      |> Option.value ~default:[]
      |> List.filter_map (fun c ->
             Option.bind (Json.member "name" c) Json.to_string_opt)
    | _ -> []
  in
  check (Alcotest.list Alcotest.string) "stages under analyze"
    [ "stage1:return_jfs"; "stage2:forward_jfs" ]
    stage_names

let test_append_json_mode () =
  let path = Filename.temp_file "ipcp_telemetry" ".jsonl" in
  let emit v =
    let t = Telemetry.create () in
    Telemetry.with_reporter t (fun () -> Telemetry.add "run" v);
    Telemetry.append_json path t
  in
  emit 1;
  emit 2;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.int "one document per append" 2 (List.length lines);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Ok doc ->
        check
          (Alcotest.option Alcotest.int)
          "documents in order"
          (Some (i + 1))
          (Option.bind (Json.path [ "counters"; "run" ] doc) Json.to_int_opt)
      | Error m -> Alcotest.failf "line %d unparseable: %s" i m)
    lines

(* ------------------------------------------------------------------ *)
(* The instrumented pipeline *)

let analyzed_program () =
  Ipcp_frontend.Sema.parse_and_resolve
    "program main\n\
     integer n\n\
     n = 6\n\
     call work(n)\n\
     end\n\
     subroutine work(k)\n\
     integer k\n\
     print *, k, k * 7\n\
     end\n"

let test_pipeline_emits_stages () =
  let t = Telemetry.create () in
  let prog = analyzed_program () in
  let driver =
    Telemetry.with_reporter t (fun () ->
        Ipcp_core.Driver.analyze Ipcp_core.Config.default prog)
  in
  let rec flatten (s : Telemetry.span_snapshot) =
    s.sp_name :: List.concat_map flatten s.sp_children
  in
  let names = List.concat_map flatten (Telemetry.spans t) in
  List.iter
    (fun stage ->
      check Alcotest.bool (stage ^ " present") true (List.mem stage names))
    [
      "analyze"; "stage1:return_jfs"; "stage2:forward_jfs"; "stage3:propagate";
      "stage4:record"; "modref"; "build_ir:work";
    ];
  check Alcotest.bool "solver counters present" true
    (Telemetry.counter t "solver.worklist.pops" <> None);
  check Alcotest.bool "per-kind eval count present" true
    (Telemetry.counter t "jf.eval.passthrough" <> None);
  (* and the analysis result is unaffected by profiling *)
  let plain = Ipcp_core.Driver.analyze Ipcp_core.Config.default prog in
  check Alcotest.int "same constants with and without profiling"
    (Ipcp_core.Driver.constants_count plain)
    (Ipcp_core.Driver.constants_count driver)

let suite =
  [
    ("telemetry disabled is a no-op", `Quick, test_disabled_is_noop);
    ("telemetry span nesting", `Quick, test_span_nesting);
    ("telemetry span aggregation", `Quick, test_span_aggregation);
    ("telemetry span ordering", `Quick, test_span_ordering_top_level);
    ("telemetry span survives exception", `Quick, test_span_survives_exception);
    ("telemetry reporter restored", `Quick, test_reporter_restored);
    ("telemetry fresh domain has no sink", `Quick,
     test_fresh_domain_has_no_sink);
    ("telemetry merge aggregates", `Quick, test_merge_aggregates);
    ("telemetry merge under a named child", `Quick, test_merge_under);
    ("telemetry worker domains merge race-free", `Quick,
     test_worker_domains_merge_race_free);
    ("telemetry counter accumulation", `Quick, test_counter_accumulation);
    ("telemetry distribution order", `Quick, test_distribution_order);
    ("telemetry json value round-trip", `Quick, test_json_roundtrip_values);
    ("telemetry profile export round-trip", `Quick, test_profile_export_roundtrip);
    ("telemetry append mode", `Quick, test_append_json_mode);
    ("telemetry pipeline emits stages", `Quick, test_pipeline_emits_stages);
  ]
