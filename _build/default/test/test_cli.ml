(* Integration tests that drive the real ipcp binary end to end: generate a
   program, run it, analyze it, substitute, lint, and print the tables.

   The binary path arrives via the IPCP_BIN environment variable, set in
   test/dune so dune builds the executable and sandboxes it with the test. *)

let check = Alcotest.check
let fail = Alcotest.fail

let bin () =
  match Sys.getenv_opt "IPCP_BIN" with
  | Some p when Sys.file_exists p -> p
  | _ -> fail "IPCP_BIN not set; run via dune"

(* Run the binary; return (exit code, stdout lines). *)
let run_cli args =
  let out = Filename.temp_file "ipcp_test" ".out" in
  let cmd =
    Fmt.str "%s %s > %s 2>&1" (Filename.quote (bin ()))
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  (code, List.rev !lines)

let write_temp src =
  let path = Filename.temp_file "ipcp_test" ".f" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  path

let sample =
  "program main\n\
   integer n\n\
   n = 6\n\
   call work(n)\n\
   end\n\
   subroutine work(k)\n\
   integer k\n\
   print *, k, k * 7\n\
   end\n"

let contains needle haystack =
  List.exists
    (fun line ->
      let n = String.length needle in
      let rec go i =
        i + n <= String.length line && (String.sub line i n = needle || go (i + 1))
      in
      n = 0 || go 0)
    haystack

let test_run () =
  let f = write_temp sample in
  let code, out = run_cli [ "run"; f ] in
  Sys.remove f;
  check Alcotest.int "exit 0" 0 code;
  check (Alcotest.list Alcotest.string) "output" [ "6 42" ] out

let test_analyze_reports_constants () =
  let f = write_temp sample in
  let code, out = run_cli [ "analyze"; f; "-j"; "passthrough" ] in
  Sys.remove f;
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "reports work.k" true (contains "work: k=6" out)

let test_analyze_substitute_roundtrip () =
  let f = write_temp sample in
  let out_f = Filename.temp_file "ipcp_test" ".f" in
  let code, _ = run_cli [ "analyze"; f; "--substitute"; out_f ] in
  check Alcotest.int "exit 0" 0 code;
  (* the substituted file must run and print the same output *)
  let code2, out2 = run_cli [ "run"; out_f ] in
  Sys.remove f;
  Sys.remove out_f;
  check Alcotest.int "substituted runs" 0 code2;
  check (Alcotest.list Alcotest.string) "same output" [ "6 42" ] out2

let test_lint_clean_and_dirty () =
  let clean = write_temp sample in
  let code, _ = run_cli [ "lint"; clean ] in
  Sys.remove clean;
  check Alcotest.int "clean exits 0" 0 code;
  let dirty =
    write_temp
      "program main\ninteger n\nn = 1\ncall s(n, n)\nend\nsubroutine s(a, \
       b)\ninteger a, b\na = b + 1\nend\n"
  in
  let code2, out2 = run_cli [ "lint"; dirty ] in
  Sys.remove dirty;
  check Alcotest.int "dirty exits 3" 3 code2;
  check Alcotest.bool "names the violation" true (contains "positions" out2)

let test_generate_then_run () =
  let code, out = run_cli [ "generate"; "--seed"; "11"; "--procs"; "4" ] in
  check Alcotest.int "generate exits 0" 0 code;
  let f = write_temp (String.concat "\n" out ^ "\n") in
  let code2, _ = run_cli [ "run"; f ] in
  Sys.remove f;
  check Alcotest.int "generated program runs" 0 code2

let test_tables () =
  let code, out = run_cli [ "tables" ] in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "table 2 header" true
    (contains "Table 2: constants found through use of jump functions" out);
  check Alcotest.bool "all programs present" true
    (List.for_all (fun p -> contains p out) Ipcp_suite.Registry.names)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_profile_json () =
  let open Ipcp_telemetry in
  let f = write_temp sample in
  let json_f = Filename.temp_file "ipcp_test" ".json" in
  let code, out = run_cli [ "analyze"; f; "--profile-json"; json_f ] in
  Sys.remove f;
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "analysis output still present" true
    (contains "work: k=6" out);
  let doc =
    match Json.of_string (read_file json_f) with
    | Ok doc -> doc
    | Error m -> fail ("profile document does not parse: " ^ m)
  in
  Sys.remove json_f;
  check
    (Alcotest.option Alcotest.string)
    "schema tag" (Some Telemetry.schema_version)
    (Option.bind (Json.member "schema" doc) Json.to_string_opt);
  (* the four pipeline stages all appear in the span tree *)
  let rec span_names j =
    match j with
    | Json.Obj _ ->
      let name =
        Option.bind (Json.member "name" j) Json.to_string_opt
        |> Option.to_list
      in
      let children =
        Option.bind (Json.member "children" j) Json.to_list_opt
        |> Option.value ~default:[]
      in
      name @ List.concat_map span_names children
    | _ -> []
  in
  let names =
    Option.bind (Json.member "spans" doc) Json.to_list_opt
    |> Option.value ~default:[]
    |> List.concat_map span_names
  in
  List.iter
    (fun stage ->
      check Alcotest.bool (stage ^ " span present") true (List.mem stage names))
    [
      "stage1:return_jfs"; "stage2:forward_jfs"; "stage3:propagate";
      "stage4:record";
    ];
  check Alcotest.bool "solver counters present" true
    (Json.path [ "counters"; "solver.worklist.pops" ] doc <> None)

let test_tables_profile_stdout_identical () =
  let code, plain = run_cli [ "characteristics" ] in
  check Alcotest.int "exit 0" 0 code;
  (* --profile reports on stderr only: stdout must stay byte-identical
     (run_cli merges stderr, so route it away with --profile-json too) *)
  let json_f = Filename.temp_file "ipcp_test" ".json" in
  let code2, profiled = run_cli [ "characteristics"; "--profile-json"; json_f ] in
  Sys.remove json_f;
  check Alcotest.int "exit 0 with profile" 0 code2;
  check (Alcotest.list Alcotest.string) "stdout identical" plain profiled

let test_syntax_error_exit_code () =
  let f = write_temp "program main\nif (x then\nend\n" in
  let code, out = run_cli [ "analyze"; f ] in
  Sys.remove f;
  check Alcotest.int "exit 1" 1 code;
  ignore out

let test_runtime_error_exit_code () =
  let f = write_temp "program main\ninteger n\nn = 0\nprint *, 1 / n\nend\n" in
  let code, _ = run_cli [ "run"; f ] in
  Sys.remove f;
  check Alcotest.int "exit 2" 2 code

let suite =
  [
    ("cli run", `Quick, test_run);
    ("cli analyze reports constants", `Quick, test_analyze_reports_constants);
    ("cli substitute round-trip", `Quick, test_analyze_substitute_roundtrip);
    ("cli lint clean and dirty", `Quick, test_lint_clean_and_dirty);
    ("cli generate then run", `Quick, test_generate_then_run);
    ("cli tables", `Quick, test_tables);
    ("cli profile json", `Quick, test_profile_json);
    ("cli profile stdout identical", `Quick, test_tables_profile_stdout_identical);
    ("cli syntax error exit code", `Quick, test_syntax_error_exit_code);
    ("cli runtime error exit code", `Quick, test_runtime_error_exit_code);
  ]
