(* Integration tests that drive the real ipcp binary end to end: generate a
   program, run it, analyze it, substitute, lint, and print the tables.

   The binary path arrives via the IPCP_BIN environment variable, set in
   test/dune so dune builds the executable and sandboxes it with the test. *)

let check = Alcotest.check
let fail = Alcotest.fail

let bin () =
  match Sys.getenv_opt "IPCP_BIN" with
  | Some p when Sys.file_exists p -> p
  | _ -> fail "IPCP_BIN not set; run via dune"

(* Run the binary; return (exit code, stdout lines). *)
let run_cli args =
  let out = Filename.temp_file "ipcp_test" ".out" in
  let cmd =
    Fmt.str "%s %s > %s 2>&1" (Filename.quote (bin ()))
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  (code, List.rev !lines)

let write_temp src =
  let path = Filename.temp_file "ipcp_test" ".f" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  path

let sample =
  "program main\n\
   integer n\n\
   n = 6\n\
   call work(n)\n\
   end\n\
   subroutine work(k)\n\
   integer k\n\
   print *, k, k * 7\n\
   end\n"

let contains needle haystack =
  List.exists
    (fun line ->
      let n = String.length needle in
      let rec go i =
        i + n <= String.length line && (String.sub line i n = needle || go (i + 1))
      in
      n = 0 || go 0)
    haystack

let test_run () =
  let f = write_temp sample in
  let code, out = run_cli [ "run"; f ] in
  Sys.remove f;
  check Alcotest.int "exit 0" 0 code;
  check (Alcotest.list Alcotest.string) "output" [ "6 42" ] out

let test_analyze_reports_constants () =
  let f = write_temp sample in
  let code, out = run_cli [ "analyze"; f; "-j"; "passthrough" ] in
  Sys.remove f;
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "reports work.k" true (contains "work: k=6" out)

let test_analyze_substitute_roundtrip () =
  let f = write_temp sample in
  let out_f = Filename.temp_file "ipcp_test" ".f" in
  let code, _ = run_cli [ "analyze"; f; "--substitute"; out_f ] in
  check Alcotest.int "exit 0" 0 code;
  (* the substituted file must run and print the same output *)
  let code2, out2 = run_cli [ "run"; out_f ] in
  Sys.remove f;
  Sys.remove out_f;
  check Alcotest.int "substituted runs" 0 code2;
  check (Alcotest.list Alcotest.string) "same output" [ "6 42" ] out2

let test_lint_clean_and_dirty () =
  let clean = write_temp sample in
  let code, _ = run_cli [ "lint"; clean ] in
  Sys.remove clean;
  check Alcotest.int "clean exits 0" 0 code;
  let dirty =
    write_temp
      "program main\ninteger n\nn = 1\ncall s(n, n)\nend\nsubroutine s(a, \
       b)\ninteger a, b\na = b + 1\nend\n"
  in
  let code2, out2 = run_cli [ "lint"; dirty ] in
  Sys.remove dirty;
  check Alcotest.int "dirty exits 3" 3 code2;
  check Alcotest.bool "names the violation" true (contains "positions" out2)

let test_generate_then_run () =
  let code, out = run_cli [ "generate"; "--seed"; "11"; "--procs"; "4" ] in
  check Alcotest.int "generate exits 0" 0 code;
  let f = write_temp (String.concat "\n" out ^ "\n") in
  let code2, _ = run_cli [ "run"; f ] in
  Sys.remove f;
  check Alcotest.int "generated program runs" 0 code2

let test_tables () =
  let code, out = run_cli [ "tables" ] in
  check Alcotest.int "exit 0" 0 code;
  check Alcotest.bool "table 2 header" true
    (contains "Table 2: constants found through use of jump functions" out);
  check Alcotest.bool "all programs present" true
    (List.for_all (fun p -> contains p out) Ipcp_suite.Registry.names)

let test_syntax_error_exit_code () =
  let f = write_temp "program main\nif (x then\nend\n" in
  let code, out = run_cli [ "analyze"; f ] in
  Sys.remove f;
  check Alcotest.int "exit 1" 1 code;
  ignore out

let test_runtime_error_exit_code () =
  let f = write_temp "program main\ninteger n\nn = 0\nprint *, 1 / n\nend\n" in
  let code, _ = run_cli [ "run"; f ] in
  Sys.remove f;
  check Alcotest.int "exit 2" 2 code

let suite =
  [
    ("cli run", `Quick, test_run);
    ("cli analyze reports constants", `Quick, test_analyze_reports_constants);
    ("cli substitute round-trip", `Quick, test_analyze_substitute_roundtrip);
    ("cli lint clean and dirty", `Quick, test_lint_clean_and_dirty);
    ("cli generate then run", `Quick, test_generate_then_run);
    ("cli tables", `Quick, test_tables);
    ("cli syntax error exit code", `Quick, test_syntax_error_exit_code);
    ("cli runtime error exit code", `Quick, test_runtime_error_exit_code);
  ]
