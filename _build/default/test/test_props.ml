(* Property-based tests (qcheck, registered as alcotest cases).

   The heavyweight properties run whole-pipeline checks on randomly
   generated MiniFort programs:
   - the paper's jump-function hierarchy (literal ⊆ intraconst ⊆
     pass-through ⊆ polynomial), both on CONSTANTS sets and on substitution
     counts;
   - soundness of every reported constant against values observed by the
     reference interpreter at procedure entries;
   - behaviour preservation of constant substitution and of complete
     propagation (same printed output);
   - monotonicity in MOD information and in return jump functions. *)

open Ipcp_frontend
open Ipcp_core
open Ipcp_suite

let spec_of_seed seed =
  (* vary the structural knobs with the seed so different shapes appear *)
  let base = Workload.default_spec in
  {
    base with
    Workload.seed;
    num_procs = 3 + (seed mod 5);
    num_globals = seed mod 4;
    stmts_per_proc = 4 + (seed mod 7);
    p_out_param = float_of_int (seed mod 3) /. 4.0;
  }

let gen_seed = QCheck2.Gen.int_range 1 10_000

let program_of_seed seed = Workload.generate_resolved (spec_of_seed seed)

let count kind prog = Substitute.count (Config.make ~kind ()) prog

(* CONSTANTS as a comparable set of (proc, param, value). *)
let constant_facts (t : Driver.t) =
  Driver.constants t
  |> List.concat_map (fun (proc, cs) ->
         List.map (fun (param, c) -> (proc, param, c)) cs)
  |> List.sort compare

(* NOTE: substitution *counts* are deliberately not property-tested for
   monotonicity.  They are not monotone in analysis precision: an extra
   constant can prove a branch dead, and uses inside dead code are not
   substituted, so a more precise configuration can legally substitute
   fewer uses.  (The paper's Table 2 counts are monotone on its suite, and
   ours are on ours — test_suite asserts that — but it is an empirical
   fact, not a theorem.)  The theorems are the CONSTANTS-set inclusions
   below. *)
let _ = count

let prop_hierarchy_sets =
  QCheck2.Test.make ~name:"jump function hierarchy: CONSTANTS sets nest"
    ~count:60 gen_seed (fun seed ->
      let prog = program_of_seed seed in
      let facts kind =
        constant_facts (Driver.analyze (Config.make ~kind ()) prog)
      in
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      let l = facts Jump_function.Literal in
      let i = facts Jump_function.Intraconst in
      let p = facts Jump_function.Passthrough in
      let y = facts Jump_function.Polynomial in
      subset l i && subset i p && subset p y)

(* Every reported constant is observed at every traced procedure entry. *)
let check_soundness prog (t : Driver.t) =
  let r = Ipcp_interp.Interp.run ~fuel:500_000 prog in
  match r.outcome with
  | Ipcp_interp.Interp.Failed m -> QCheck2.Test.fail_reportf "interpreter: %s" m
  | Out_of_fuel -> true (* nothing to check against *)
  | Finished ->
    List.for_all
      (fun (proc_name, cs) ->
        let entries =
          List.filter
            (fun (e : Ipcp_interp.Interp.entry_snapshot) ->
              e.es_proc = proc_name)
            r.entries
        in
        List.for_all
          (fun (param, c) ->
            List.for_all
              (fun (e : Ipcp_interp.Interp.entry_snapshot) ->
                let observed =
                  match param with
                  | Prog.Pformal i -> List.assoc_opt i e.es_formals
                  | Prog.Pglob key -> List.assoc_opt key e.es_globals
                in
                match observed with
                | Some (Some v) ->
                  if Ipcp_interp.Interp.equal_value v (Ipcp_interp.Interp.Vint c)
                  then true
                  else
                    QCheck2.Test.fail_reportf
                      "unsound: %s claims %s = %d but observed %a" proc_name
                      (Prog.param_name t.prog
                         (Prog.find_proc_exn t.prog proc_name)
                         param)
                      c Ipcp_interp.Interp.pp_value v
                | Some None | None ->
                  (* parameter uninitialized or untracked at this entry *)
                  true)
              entries)
          cs)
      (Driver.constants t)

let prop_soundness =
  QCheck2.Test.make ~name:"CONSTANTS sound against interpreter" ~count:80
    gen_seed (fun seed ->
      let prog = program_of_seed seed in
      let t = Driver.analyze Config.polynomial_with_mod prog in
      check_soundness prog t)

let prop_soundness_no_mod =
  QCheck2.Test.make ~name:"CONSTANTS sound without MOD" ~count:40 gen_seed
    (fun seed ->
      let prog = program_of_seed seed in
      let t = Driver.analyze Config.polynomial_no_mod prog in
      check_soundness prog t)

let prop_substitution_preserves_behaviour =
  QCheck2.Test.make ~name:"substitution preserves printed output" ~count:60
    gen_seed (fun seed ->
      let prog = program_of_seed seed in
      let t = Driver.analyze Config.polynomial_with_mod prog in
      let prog', _ = Substitute.apply t in
      let r1 = Ipcp_interp.Interp.run ~fuel:500_000 ~trace_entries:false prog in
      let r2 = Ipcp_interp.Interp.run ~fuel:500_000 ~trace_entries:false prog' in
      match (r1.outcome, r2.outcome) with
      | Ipcp_interp.Interp.Finished, Ipcp_interp.Interp.Finished ->
        if r1.outputs = r2.outputs then true
        else
          QCheck2.Test.fail_reportf "output changed:@.%a@.vs@.%a"
            (Fmt.list Fmt.string) r1.outputs (Fmt.list Fmt.string) r2.outputs
      | Out_of_fuel, _ | _, Out_of_fuel -> true
      | o1, o2 ->
        let s = function
          | Ipcp_interp.Interp.Finished -> "finished"
          | Out_of_fuel -> "fuel"
          | Failed m -> "failed: " ^ m
        in
        QCheck2.Test.fail_reportf "outcomes differ: %s vs %s" (s o1) (s o2))

let prop_complete_preserves_behaviour =
  QCheck2.Test.make ~name:"complete propagation (DCE) preserves output"
    ~count:40 gen_seed (fun seed ->
      let prog = program_of_seed seed in
      let outcome = Complete.run prog in
      let prog' = outcome.final.Driver.prog in
      let r1 = Ipcp_interp.Interp.run ~fuel:500_000 ~trace_entries:false prog in
      let r2 = Ipcp_interp.Interp.run ~fuel:500_000 ~trace_entries:false prog' in
      match (r1.outcome, r2.outcome) with
      | Ipcp_interp.Interp.Finished, Ipcp_interp.Interp.Finished ->
        r1.outputs = r2.outputs
      | Out_of_fuel, _ | _, Out_of_fuel -> true
      | _, _ -> false)

let facts config prog = constant_facts (Driver.analyze config prog)

let subset a b = List.for_all (fun x -> List.mem x b) a

let prop_mod_monotone =
  QCheck2.Test.make ~name:"MOD information is monotone (CONSTANTS sets)"
    ~count:60 gen_seed (fun seed ->
      let prog = program_of_seed seed in
      subset (facts Config.polynomial_no_mod prog)
        (facts Config.polynomial_with_mod prog))

let prop_return_jf_monotone =
  QCheck2.Test.make
    ~name:"return jump functions are monotone (CONSTANTS sets)" ~count:60
    gen_seed (fun seed ->
      let prog = program_of_seed seed in
      subset
        (facts
           (Config.make ~kind:Jump_function.Passthrough ~return_jfs:false ())
           prog)
        (facts Config.default prog))

let prop_intra_below_inter =
  QCheck2.Test.make ~name:"intraprocedural baseline claims no entry facts"
    ~count:30 gen_seed (fun seed ->
      let prog = program_of_seed seed in
      facts Config.intraprocedural_only prog = [])

let prop_roundtrip_generated =
  QCheck2.Test.make ~name:"parse/print round-trip on generated programs"
    ~count:80 gen_seed (fun seed ->
      let src = Workload.generate (spec_of_seed seed) in
      let ast1 = Parser.parse_program src in
      let ast2 = Parser.parse_program (Pretty.ast_program_to_string ast1) in
      Ast.equal_program ast1 ast2)

let prop_interp_deterministic =
  QCheck2.Test.make ~name:"interpreter is deterministic" ~count:30 gen_seed
    (fun seed ->
      let prog = program_of_seed seed in
      let r1 = Ipcp_interp.Interp.run ~fuel:200_000 prog in
      let r2 = Ipcp_interp.Interp.run ~fuel:200_000 prog in
      r1.outputs = r2.outputs && List.length r1.entries = List.length r2.entries)

(* Substituted programs still resolve (printed source is valid MiniFort). *)
let prop_substituted_reparses =
  QCheck2.Test.make ~name:"substituted program reparses and re-resolves"
    ~count:40 gen_seed (fun seed ->
      let prog = program_of_seed seed in
      let t = Driver.analyze Config.default prog in
      let prog', _ = Substitute.apply t in
      let printed = Pretty.program_to_string prog' in
      match Sema.parse_and_resolve printed with
      | _ -> true
      | exception Loc.Error (l, m) ->
        QCheck2.Test.fail_reportf "invalid at %a: %s@.%s" Loc.pp l m printed)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_hierarchy_sets;
      prop_soundness;
      prop_soundness_no_mod;
      prop_substitution_preserves_behaviour;
      prop_complete_preserves_behaviour;
      prop_mod_monotone;
      prop_return_jf_monotone;
      prop_intra_below_inter;
      prop_roundtrip_generated;
      prop_interp_deterministic;
      prop_substituted_reparses;
    ]
