(* Unit and property tests for the IR layer: CFG lowering, dominators and
   SSA construction. *)

open Ipcp_frontend
open Ipcp_ir
open Ipcp_suite

let check = Alcotest.check
let fail = Alcotest.fail

let lower_named src name =
  let prog = Sema.parse_and_resolve src in
  let proc = Prog.find_proc_exn prog name in
  Lower.lower_proc ~next_expr_id:(Lower.expr_id_ceiling prog) proc

(* ------------------------------------------------------------------ *)
(* Lowering *)

let test_lower_straightline () =
  let cfg = lower_named "program t\nx = 1\ny = 2.0\nprint *, x\nend\n" "t" in
  check Alcotest.int "one block" 1 (Cfg.num_blocks cfg);
  check Alcotest.int "three instrs" 3
    (List.length (Cfg.block cfg cfg.entry).b_instrs);
  match (Cfg.block cfg cfg.entry).b_term with
  | Cfg.Tstop -> () (* main falls off the end: stop *)
  | _ -> fail "main must end in stop"

let test_lower_if_shape () =
  let cfg =
    lower_named
      "program t\nn = 1\nif (n .gt. 0) then\nn = 2\nelse\nn = 3\nend \
       if\nprint *, n\nend\n"
      "t"
  in
  (* entry + then + else + join (+ possibly an empty arm block) *)
  check Alcotest.bool "at least 4 blocks" true (Cfg.num_blocks cfg >= 4);
  let branches =
    Array.to_list cfg.blocks
    |> List.filter (fun (b : Cfg.block) ->
           match b.b_term with Cfg.Tbranch _ -> true | _ -> false)
  in
  check Alcotest.int "one branch" 1 (List.length branches)

let test_lower_do_loop_back_edge () =
  let cfg =
    lower_named "program t\ns = 0\ndo i = 1, 10\ns = s + i\nend do\nprint *, \
                 s\nend\n" "t"
  in
  (* some block must jump backwards (the loop latch) *)
  let has_back_edge =
    Array.exists
      (fun (b : Cfg.block) ->
        List.exists (fun s -> s < b.b_id) (Cfg.successors cfg b.b_id))
      cfg.blocks
  in
  check Alcotest.bool "loop back edge" true has_back_edge

let test_lower_call_in_expr_hoisted () =
  let cfg =
    lower_named
      "program t\ni = f(1) + f(2)\nend\nfunction f(x)\ninteger f, x\nf = \
       x\nend\n"
      "t"
  in
  let calls = ref 0 in
  Array.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun instr ->
          match instr with
          | Cfg.Icall c ->
            incr calls;
            check Alcotest.bool "call has result temp" true
              (c.c_result <> None)
          | Cfg.Iassign (_, e) ->
            (* the remaining assignment must be call-free *)
            let rec pure (e : Prog.expr) =
              match e.edesc with
              | Prog.Ecall _ -> false
              | Prog.Cint _ | Prog.Creal _ | Prog.Cbool _ | Prog.Cstr _
              | Prog.Evar _ ->
                true
              | Prog.Earr (_, idx) -> List.for_all pure idx
              | Prog.Eintr (_, args) -> List.for_all pure args
              | Prog.Eun (_, a) -> pure a
              | Prog.Ebin (_, a, b) -> pure a && pure b
            in
            check Alcotest.bool "assign is pure" true (pure e)
          | _ -> ())
        b.b_instrs)
    cfg.blocks;
  check Alcotest.int "two hoisted calls" 2 !calls

let test_lower_goto_targets () =
  let cfg =
    lower_named
      "program t\nn = 0\n10 n = n + 1\nif (n .lt. 3) goto 10\nprint *, \
       n\nend\n"
      "t"
  in
  (* must be a cycle: reachable blocks include a back edge *)
  let reach = Cfg.reachable cfg in
  let has_cycle =
    Array.exists
      (fun (b : Cfg.block) ->
        reach.(b.b_id)
        && List.exists
             (fun s -> s <= b.b_id && reach.(s))
             (Cfg.successors cfg b.b_id))
      cfg.blocks
  in
  check Alcotest.bool "goto loop forms cycle" true has_cycle

let test_lower_unreachable_after_return () =
  let cfg =
    lower_named "subroutine s\nreturn\nprint *, 1\nend\nprogram t\ncall s\nend\n" "s"
  in
  let reach = Cfg.reachable cfg in
  let unreachable_print =
    Array.exists
      (fun (b : Cfg.block) ->
        (not reach.(b.b_id))
        && List.exists
             (fun i -> match i with Cfg.Iprint _ -> true | _ -> false)
             b.b_instrs)
      cfg.blocks
  in
  check Alcotest.bool "print after return unreachable" true unreachable_print

(* ------------------------------------------------------------------ *)
(* Dominators *)

(* naive dominator computation by dataflow for cross-checking *)
let naive_dominators (cfg : Cfg.t) : bool array array =
  let n = Cfg.num_blocks cfg in
  let reach = Cfg.reachable cfg in
  let preds = Cfg.predecessors cfg in
  let dom = Array.init n (fun _ -> Array.make n true) in
  Array.iteri (fun i _ -> if not reach.(i) then dom.(i) <- Array.make n false) dom;
  dom.(cfg.entry) <- Array.make n false;
  dom.(cfg.entry).(cfg.entry) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if reach.(b) && b <> cfg.entry then begin
        let inter = Array.make n true in
        let got_pred = ref false in
        List.iter
          (fun p ->
            if reach.(p) then begin
              got_pred := true;
              for k = 0 to n - 1 do
                inter.(k) <- inter.(k) && dom.(p).(k)
              done
            end)
          preds.(b);
        if not !got_pred then Array.fill inter 0 n false;
        inter.(b) <- true;
        if inter <> dom.(b) then begin
          dom.(b) <- inter;
          changed := true
        end
      end
    done
  done;
  dom

let check_dominators_against_naive cfg =
  let dom = Dom.compute cfg in
  let naive = naive_dominators cfg in
  let n = Cfg.num_blocks cfg in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let fast = Dom.dominates dom a b in
      let slow = naive.(b).(a) in
      if fast <> slow then
        fail
          (Fmt.str "dominates %d %d: fast=%b naive=%b in@.%a" a b fast slow
             Cfg.pp cfg)
    done
  done

let test_dom_simple_diamond () =
  let cfg =
    lower_named
      "program t\nn = 1\nif (n .gt. 0) then\nn = 2\nelse\nn = 3\nend \
       if\nprint *, n\nend\n"
      "t"
  in
  check_dominators_against_naive cfg

let test_dom_loop () =
  let cfg =
    lower_named
      "program t\ns = 0\ndo i = 1, 3\nif (s .gt. 1) then\ns = s - 1\nend \
       if\ns = s + i\nend do\nprint *, s\nend\n"
      "t"
  in
  check_dominators_against_naive cfg

let prop_dom_matches_naive =
  QCheck2.Test.make ~name:"fast dominators match naive dataflow" ~count:60
    (QCheck2.Gen.int_range 1 5_000) (fun seed ->
      let prog =
        Workload.generate_resolved { Workload.default_spec with seed }
      in
      List.iter
        (fun (p : Prog.proc) ->
          let cfg =
            Lower.lower_proc ~next_expr_id:(Lower.expr_id_ceiling prog) p
          in
          check_dominators_against_naive cfg)
        prog.procs;
      true)

(* ------------------------------------------------------------------ *)
(* SSA invariants *)

let build_ssa_for prog (p : Prog.proc) =
  let cfg = Lower.lower_proc ~next_expr_id:(Lower.expr_id_ceiling prog) p in
  let dom = Dom.compute cfg in
  (cfg, dom, Ssa.build p cfg dom)

(* Every instruction use refers to a definition that dominates it. *)
let check_ssa_dominance (cfg : Cfg.t) (dom : Dom.t) (ssa : Ssa.t) =
  let def_location n =
    match (Ssa.def ssa n).d_site with
    | Ssa.Dentry -> `Entry
    | Ssa.Dphi b -> `Block (b, -1)
    | Ssa.Dinstr (b, i) -> `Block (b, i)
  in
  let dominates_use ~def_loc ~use_block ~use_index =
    match def_loc with
    | `Entry -> true
    | `Block (db, di) ->
      if db = use_block then di < use_index
      else Dom.dominates dom db use_block
  in
  Array.iteri
    (fun b instrs ->
      if Dom.is_reachable dom b then
        Array.iteri
          (fun i _ ->
            List.iter
              (fun (_, n) ->
                if
                  not
                    (dominates_use ~def_loc:(def_location n) ~use_block:b
                       ~use_index:i)
                then
                  fail
                    (Fmt.str "use of %d in B%d/%d not dominated by def" n b i))
              (Ssa.info_at ssa b i).ii_uses)
          instrs)
    ssa.Ssa.instrs;
  (* phi args: the def must dominate the end of the corresponding pred *)
  Array.iteri
    (fun b phis ->
      List.iter
        (fun (p : Ssa.phi) ->
          List.iter
            (fun (pred, arg) ->
              match def_location arg with
              | `Entry -> ()
              | `Block (db, _) ->
                if not (db = pred || Dom.dominates dom db pred) then
                  fail
                    (Fmt.str "phi arg %d in B%d from B%d not dominated" arg b
                       pred))
            p.p_args)
        phis)
    ssa.Ssa.phis;
  ignore cfg

(* Each phi has exactly one argument per reachable predecessor. *)
let check_phi_arity (cfg : Cfg.t) (dom : Dom.t) (ssa : Ssa.t) =
  let preds = Cfg.predecessors cfg in
  Array.iteri
    (fun b phis ->
      if Dom.is_reachable dom b then
        let reachable_preds =
          List.filter (Dom.is_reachable dom) preds.(b)
        in
        List.iter
          (fun (p : Ssa.phi) ->
            check Alcotest.int
              (Fmt.str "phi %s arity in B%d" p.p_var b)
              (List.length reachable_preds)
              (List.length p.p_args))
          phis)
    ssa.Ssa.phis

let prop_ssa_invariants =
  QCheck2.Test.make ~name:"SSA dominance and phi-arity invariants" ~count:60
    (QCheck2.Gen.int_range 1 5_000) (fun seed ->
      let prog =
        Workload.generate_resolved { Workload.default_spec with seed }
      in
      List.iter
        (fun (p : Prog.proc) ->
          let cfg, dom, ssa = build_ssa_for prog p in
          check_ssa_dominance cfg dom ssa;
          check_phi_arity cfg dom ssa)
        prog.procs;
      true)

let test_ssa_loop_phi () =
  let prog =
    Sema.parse_and_resolve
      "program t\ns = 0\ndo i = 1, 3\ns = s + i\nend do\nprint *, s\nend\n"
  in
  let p = Prog.find_proc_exn prog "t" in
  let _, _, ssa = build_ssa_for prog p in
  (* s and i need phis in the loop header *)
  let phi_vars =
    Array.to_list ssa.Ssa.phis
    |> List.concat_map (fun phis -> List.map (fun (p : Ssa.phi) -> p.p_var) phis)
  in
  check Alcotest.bool "phi for s" true (List.mem "s" phi_vars);
  check Alcotest.bool "phi for i" true (List.mem "i" phi_vars)

let test_ssa_exit_versions () =
  let prog =
    Sema.parse_and_resolve
      "subroutine s(x)\ninteger x\nif (x .gt. 0) then\nreturn\nend if\nx = \
       1\nend\nprogram t\ninteger v\nv = 0\ncall s(v)\nend\n"
  in
  let p = Prog.find_proc_exn prog "s" in
  let _, _, ssa = build_ssa_for prog p in
  (* two reachable exits: the early return and the implicit end *)
  check Alcotest.int "two exits" 2 (List.length (Ssa.exits ssa))

let suite =
  [
    ("lower straight line", `Quick, test_lower_straightline);
    ("lower if shape", `Quick, test_lower_if_shape);
    ("lower do loop back edge", `Quick, test_lower_do_loop_back_edge);
    ("lower hoists calls from exprs", `Quick, test_lower_call_in_expr_hoisted);
    ("lower goto cycle", `Quick, test_lower_goto_targets);
    ("lower unreachable after return", `Quick, test_lower_unreachable_after_return);
    ("dominators diamond", `Quick, test_dom_simple_diamond);
    ("dominators loop", `Quick, test_dom_loop);
    ("ssa loop phis", `Quick, test_ssa_loop_phi);
    ("ssa exit versions", `Quick, test_ssa_exit_versions);
    QCheck_alcotest.to_alcotest prop_dom_matches_naive;
    QCheck_alcotest.to_alcotest prop_ssa_invariants;
  ]
