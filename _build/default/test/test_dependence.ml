(* Tests for the miniature dependence tester (the paper's §1 motivation):
   affine subscript recognition and the GCD test, with and without
   interprocedural constant information. *)

open Ipcp_frontend
open Ipcp_analysis
open Ipcp_core

let check = Alcotest.check
let fail = Alcotest.fail

let no_consts (_ : Prog.proc) (_ : Prog.var) = None

let analyze ?(const_of = no_consts) src =
  Dependence.analyze_program ~const_of (Sema.parse_and_resolve src)

(* ------------------------------------------------------------------ *)
(* affine recognition *)

let affine_of src =
  (* parse a single-loop program and classify its one write subscript *)
  let reports = analyze src in
  match reports with
  | [ r ] -> (
    match
      List.find_opt (fun (a : Dependence.access) -> a.acc_is_write) r.lr_accesses
    with
    | Some a -> a.acc_subscript
    | None -> fail "no write access found")
  | _ -> fail "expected exactly one loop"

let loop_with subscript =
  Fmt.str
    "program t\ninteger a(100), i\ndo i = 1, 9\na(%s) = i\nend do\nend\n"
    subscript

let test_affine_plain_i () =
  match affine_of (loop_with "i") with
  | Dependence.Affine { coeff = 1; offset = 0 } -> ()
  | _ -> fail "a(i) should be affine 1*i+0"

let test_affine_scaled () =
  match affine_of (loop_with "3 * i - 2") with
  | Dependence.Affine { coeff = 3; offset = -2 } -> ()
  | _ -> fail "a(3i-2) should be affine"

let test_affine_reversed_mul () =
  match affine_of (loop_with "i * 4 + 1") with
  | Dependence.Affine { coeff = 4; offset = 1 } -> ()
  | _ -> fail "a(i*4+1) should be affine"

let test_affine_constant_subscript () =
  match affine_of (loop_with "7") with
  | Dependence.Affine { coeff = 0; offset = 7 } -> ()
  | _ -> fail "a(7) should be affine 0*i+7"

let test_nonlinear_i_squared () =
  match affine_of (loop_with "i * i") with
  | Dependence.Nonlinear -> ()
  | _ -> fail "a(i*i) is nonlinear"

let test_nonlinear_unknown_symbol () =
  (* m is a formal with unknown value *)
  let reports =
    analyze
      "program t\ninteger n\nn = 0\nread *, n\ncall s(n)\nend\nsubroutine \
       s(m)\ninteger m, a(100), i\ndo i = 1, 9\na(m * i) = i\nend \
       do\nprint *, a(1)\nend\n"
  in
  match reports with
  | [ r ] -> (
    match r.lr_accesses with
    | [ { acc_subscript = Dependence.Nonlinear; _ } ] -> ()
    | _ -> fail "a(m*i) with unknown m must be nonlinear")
  | _ -> fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* the GCD test *)

let test_gcd_independent () =
  (* a(2i) vs a(2i+1): stride 2, offsets of different parity *)
  check Alcotest.bool "2i vs 2i+1 independent" true
    (Dependence.gcd_test { coeff = 2; offset = 0 } { coeff = 2; offset = 1 }
    = `Independent)

let test_gcd_possible () =
  check Alcotest.bool "2i vs 2i+4 possibly dependent" true
    (Dependence.gcd_test { coeff = 2; offset = 0 } { coeff = 2; offset = 4 }
    = `Possible)

let test_gcd_zero_coeffs () =
  check Alcotest.bool "a(5) vs a(5) dependent" true
    (Dependence.gcd_test { coeff = 0; offset = 5 } { coeff = 0; offset = 5 }
    = `Possible);
  check Alcotest.bool "a(5) vs a(6) independent" true
    (Dependence.gcd_test { coeff = 0; offset = 5 } { coeff = 0; offset = 6 }
    = `Independent)

let test_gcd_mixed_strides () =
  (* 4i vs 6j: gcd 2 divides any even difference *)
  check Alcotest.bool "4i vs 6j+1 independent" true
    (Dependence.gcd_test { coeff = 4; offset = 0 } { coeff = 6; offset = 1 }
    = `Independent);
  check Alcotest.bool "4i vs 6j+2 possible" true
    (Dependence.gcd_test { coeff = 4; offset = 0 } { coeff = 6; offset = 2 }
    = `Possible)

(* ------------------------------------------------------------------ *)
(* end to end: interprocedural constants make subscripts analyzable *)

let shen_li_yew_src =
  "program main\n\
   call kernel(2, 1)\n\
   end\n\
   subroutine kernel(m, k)\n\
   integer m, k, i, a(64)\n\
   do i = 1, 64\n\
   a(i) = 0\n\
   end do\n\
   do i = 1, 10\n\
   a(m * i + k) = a(m * i) + 1\n\
   end do\n\
   print *, a(3)\n\
   end\n"

let test_constants_linearize () =
  let prog = Sema.parse_and_resolve shen_li_yew_src in
  let t = Driver.analyze Config.polynomial_with_mod prog in
  let const_of (proc : Prog.proc) (v : Prog.var) =
    match v.vkind with
    | Prog.Kformal i ->
      Const_lattice.const_value
        (Solver.lookup t.solution proc.pname (Prog.Pformal i))
    | _ -> None
  in
  let without = Dependence.analyze_program ~const_of:no_consts prog in
  let with_ = Dependence.analyze_program ~const_of prog in
  let _, nl_without = Dependence.subscript_totals without in
  let affine_with, nl_with = Dependence.subscript_totals with_ in
  check Alcotest.bool "nonlinear without constants" true (nl_without > 0);
  check Alcotest.int "all linear with constants" 0 nl_with;
  check Alcotest.bool "affine count grew" true (affine_with > 0);
  (* and the interesting loop is proven independent *)
  let interesting =
    List.find
      (fun (r : Dependence.loop_report) ->
        List.exists (fun (a : Dependence.access) -> a.acc_is_write) r.lr_accesses
        && List.length r.lr_accesses > 1)
      with_
  in
  check Alcotest.int "one independent pair" 1 interesting.lr_independent_pairs;
  check Alcotest.int "no unknown pairs" 0 interesting.lr_unknown_pairs

let test_dependent_pair_detected () =
  (* a(i) written and a(i-1) read: genuinely dependent, GCD can't rule out *)
  let reports =
    analyze
      "program t\ninteger a(100), i\na(1) = 1\ndo i = 2, 50\na(i) = a(i - 1) \
       + 1\nend do\nprint *, a(50)\nend\n"
  in
  let r =
    List.find
      (fun (r : Dependence.loop_report) -> r.lr_accesses <> [])
      reports
  in
  check Alcotest.bool "dependence detected" true (r.lr_dependent_pairs > 0)

let suite =
  [
    ("affine: i", `Quick, test_affine_plain_i);
    ("affine: 3i-2", `Quick, test_affine_scaled);
    ("affine: i*4+1", `Quick, test_affine_reversed_mul);
    ("affine: constant", `Quick, test_affine_constant_subscript);
    ("nonlinear: i*i", `Quick, test_nonlinear_i_squared);
    ("nonlinear: unknown symbol", `Quick, test_nonlinear_unknown_symbol);
    ("gcd: independent", `Quick, test_gcd_independent);
    ("gcd: possible", `Quick, test_gcd_possible);
    ("gcd: constant subscripts", `Quick, test_gcd_zero_coeffs);
    ("gcd: mixed strides", `Quick, test_gcd_mixed_strides);
    ("constants linearize subscripts", `Quick, test_constants_linearize);
    ("real dependence detected", `Quick, test_dependent_pair_detected);
  ]
