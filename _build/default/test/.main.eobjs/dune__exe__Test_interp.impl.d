test/test_interp.ml: Alcotest Fmt Interp Ipcp_frontend Ipcp_interp List Sema String
