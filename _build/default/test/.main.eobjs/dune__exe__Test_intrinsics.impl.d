test/test_intrinsics.ml: Alcotest Config Driver Fmt Ipcp_analysis Ipcp_core Ipcp_frontend Ipcp_interp List Loc Prog QCheck2 QCheck_alcotest Sema Solver String Substitute
