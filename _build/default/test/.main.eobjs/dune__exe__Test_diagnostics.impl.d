test/test_diagnostics.ml: Alcotest Fmt Ipcp_frontend Ipcp_support List Prog Sema String
