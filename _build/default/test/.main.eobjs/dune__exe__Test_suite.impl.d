test/test_suite.ml: Alcotest Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_interp Ipcp_suite Jump_function List Metrics Prog Registry Substitute Tables
