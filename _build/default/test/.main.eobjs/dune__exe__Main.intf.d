test/main.mli:
