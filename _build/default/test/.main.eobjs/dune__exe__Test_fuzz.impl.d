test/test_fuzz.ml: Buffer Ipcp_frontend Ipcp_interp Ipcp_support Lexer List Loc Parser Prng QCheck2 QCheck_alcotest Sema
