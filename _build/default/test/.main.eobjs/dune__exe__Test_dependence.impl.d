test/test_dependence.ml: Alcotest Config Const_lattice Dependence Driver Fmt Ipcp_analysis Ipcp_core Ipcp_frontend List Prog Sema Solver
