test/test_fault.ml: Alcotest Config Driver Fmt Fun Ipcp_core Ipcp_engine Ipcp_frontend Ipcp_support List Printexc Sys
