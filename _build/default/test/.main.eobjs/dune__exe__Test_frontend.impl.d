test/test_frontend.ml: Alcotest Ast Fmt Ipcp_frontend Lexer List Loc Parser Pretty Prog Sema Token
