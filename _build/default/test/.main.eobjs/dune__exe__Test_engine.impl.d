test/test_engine.ml: Alcotest Array Fmt Fun Ipcp_engine Ipcp_telemetry List String Telemetry
