test/test_engine.ml: Alcotest Array Atomic Fmt Fun Ipcp_engine Ipcp_telemetry List Printexc String Telemetry
