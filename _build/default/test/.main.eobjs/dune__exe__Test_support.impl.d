test/test_support.ml: Alcotest Fun Hashtbl Ipcp_support List Option Prng QCheck2 QCheck_alcotest Stats Worklist
