test/test_core.ml: Alcotest Callgraph Complete Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_interp Jump_function List Loc Modref Pretty Prog Sema Solver String Substitute
