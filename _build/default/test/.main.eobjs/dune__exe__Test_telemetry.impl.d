test/test_telemetry.ml: Alcotest Domain Filename Ipcp_core Ipcp_frontend Ipcp_telemetry Json List Option Printf Sys Telemetry
