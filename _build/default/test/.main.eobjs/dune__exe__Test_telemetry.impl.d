test/test_telemetry.ml: Alcotest Filename Ipcp_core Ipcp_frontend Ipcp_telemetry Json List Option Sys Telemetry
