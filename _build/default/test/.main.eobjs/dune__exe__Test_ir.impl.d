test/test_ir.ml: Alcotest Array Cfg Dom Fmt Ipcp_frontend Ipcp_ir Ipcp_suite List Lower Prog QCheck2 QCheck_alcotest Sema Ssa Workload
