test/test_props.ml: Ast Complete Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_interp Ipcp_suite Jump_function List Loc Parser Pretty Prog QCheck2 QCheck_alcotest Sema Substitute Workload
