test/test_data_stmt.ml: Alcotest Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_interp List Loc Pretty Prog Sema Solver Substitute
