test/test_golden.ml: Alcotest Ipcp_suite List Tables
