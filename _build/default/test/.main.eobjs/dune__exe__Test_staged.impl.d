test/test_staged.ml: Alcotest Complete Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_suite Ipcp_telemetry List Registry String Substitute Tables Telemetry
