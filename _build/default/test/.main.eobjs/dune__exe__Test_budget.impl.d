test/test_budget.ml: Alcotest Complete Config Driver Fmt Int64 Ipcp_core Ipcp_frontend Ipcp_suite Ipcp_support List Prog QCheck QCheck_alcotest Sema Substitute
