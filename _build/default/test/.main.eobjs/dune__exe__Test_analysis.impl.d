test/test_analysis.ml: Alcotest Array Const_lattice Dce Dom Fmt Hashtbl Ipcp_analysis Ipcp_frontend Ipcp_ir List Lower Prog QCheck2 QCheck_alcotest Sccp Sema Ssa Symbolic
