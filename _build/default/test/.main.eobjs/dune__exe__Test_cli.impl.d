test/test_cli.ml: Alcotest Filename Fmt Ipcp_suite List String Sys
