test/test_cli.ml: Alcotest Filename Fmt Ipcp_suite Ipcp_telemetry Json List Option String Sys Telemetry
