(* Golden regression test: the exact Table 2 / Table 3 values on the
   bundled suite.  The suite programs and the analyzer are both
   deterministic, so any change here is a real behaviour change — either a
   bug or an intentional revision of the suite/analyzer, in which case
   update the expected rows below AND re-check the shape assertions in
   test_suite.ml and the narrative in EXPERIMENTS.md. *)

open Ipcp_suite

let check = Alcotest.check

(* program, poly+ret, pass+ret, intra+ret, lit+ret, poly-ret, pass-ret *)
let expected_table2 =
  [
    ("adm", 111, 111, 111, 111, 111, 111);
    ("doduc", 201, 201, 201, 195, 198, 198);
    ("fpppp", 85, 85, 70, 52, 81, 81);
    ("linpackd", 90, 90, 90, 75, 90, 90);
    ("matrix300", 46, 46, 32, 30, 46, 46);
    ("mdg", 38, 38, 36, 25, 35, 35);
    ("ocean", 110, 110, 110, 46, 45, 45);
    ("qcd", 94, 94, 94, 93, 93, 93);
    ("simple", 101, 101, 94, 84, 101, 101);
    ("snasa7", 131, 131, 131, 91, 131, 131);
    ("spec77", 49, 49, 49, 35, 48, 48);
    ("trfd", 24, 24, 23, 21, 24, 24);
  ]

(* program, no-mod, with-mod, complete, intra-only *)
let expected_table3 =
  [
    ("adm", 31, 111, 111, 82);
    ("doduc", 197, 201, 201, 1);
    ("fpppp", 61, 85, 85, 36);
    ("linpackd", 11, 90, 90, 69);
    ("matrix300", 5, 46, 46, 27);
    ("mdg", 23, 38, 38, 18);
    ("ocean", 45, 110, 116, 20);
    ("qcd", 93, 94, 94, 91);
    ("simple", 14, 101, 101, 76);
    ("snasa7", 120, 131, 131, 91);
    ("spec77", 40, 49, 56, 25);
    ("trfd", 17, 24, 24, 16);
  ]

let test_table2_golden () =
  List.iter2
    (fun (r : Tables.table2_row) (name, poly, pass, intra, lit, npoly, npass) ->
      check Alcotest.string "program" name r.t2_name;
      check Alcotest.int (name ^ " poly+ret") poly r.ret_poly;
      check Alcotest.int (name ^ " pass+ret") pass r.ret_pass;
      check Alcotest.int (name ^ " intra+ret") intra r.ret_intra;
      check Alcotest.int (name ^ " lit+ret") lit r.ret_lit;
      check Alcotest.int (name ^ " poly-ret") npoly r.noret_poly;
      check Alcotest.int (name ^ " pass-ret") npass r.noret_pass)
    (Tables.table2 ()) expected_table2

let test_table3_golden () =
  List.iter2
    (fun (r : Tables.table3_row) (name, nomod, withmod, complete, intra) ->
      check Alcotest.string "program" name r.t3_name;
      check Alcotest.int (name ^ " no-mod") nomod r.poly_no_mod;
      check Alcotest.int (name ^ " with-mod") withmod r.poly_mod;
      check Alcotest.int (name ^ " complete") complete r.complete;
      check Alcotest.int (name ^ " intra-only") intra r.intra_only)
    (Tables.table3 ()) expected_table3

let suite =
  [
    ("table 2 golden values", `Quick, test_table2_golden);
    ("table 3 golden values", `Quick, test_table3_golden);
  ]
