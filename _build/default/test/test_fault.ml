(* Fault injection and recovery: seeded faults are deterministic, the
   engine contains raising tasks (healthy results survive, in input
   order, byte-identical at every jobs count), retries re-attempt only
   failed tasks, and budget starvation degrades the analysis soundly.

   The seed comes from IPCP_FAULT_SEED when set (ci.sh runs the suite
   under two fixed seeds), defaulting to 7. *)

module Fault = Ipcp_support.Fault
module Budget = Ipcp_support.Budget
module Engine = Ipcp_engine.Engine

let check = Alcotest.check

let seed () =
  match Sys.getenv_opt "IPCP_FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 7)
  | None -> 7

(* Render a result list so runs can be compared byte-for-byte. *)
let show_results rs =
  List.map
    (function
      | Ok v -> Fmt.str "ok:%d" v
      | Error (te : Engine.task_error) ->
        Fmt.str "err[%d]:%s" te.te_attempts (Printexc.to_string te.te_exn))
    rs

let test_inject_deterministic () =
  let decisions () =
    Fault.with_faults ~seed:(seed ()) ~raise_rate:0.5 (fun () ->
        List.init 100 (fun i ->
            match Fault.inject (Fmt.str "site:%d" i) with
            | () -> false
            | exception Fault.Injected _ -> true))
  in
  check (Alcotest.list Alcotest.bool) "same seed, same decisions"
    (decisions ()) (decisions ());
  check Alcotest.bool "faults cleared afterwards" false (Fault.active ())

let test_different_seeds_differ () =
  let decisions s =
    Fault.with_faults ~seed:s ~raise_rate:0.5 (fun () ->
        List.init 200 (fun i ->
            match Fault.inject (Fmt.str "site:%d" i) with
            | () -> false
            | exception Fault.Injected _ -> true))
  in
  check Alcotest.bool "seeds 1 and 2 disagree somewhere" false
    (decisions 1 = decisions 2)

(* k of n tasks raise; the n-k healthy results come back in input order
   and the whole result list is identical at every jobs count. *)
let test_engine_containment_across_jobs () =
  let n = 32 in
  let run jobs =
    Fault.with_faults ~seed:(seed ()) ~raise_rate:0.25 (fun () ->
        Engine.map_result ~jobs (fun x -> x * x) (List.init n Fun.id))
  in
  let reference = run 1 in
  check Alcotest.int "one result per task" n (List.length reference);
  let k =
    List.length (List.filter (function Error _ -> true | _ -> false) reference)
  in
  (* healthy results: value and position both match the input order *)
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check Alcotest.int (Fmt.str "slot %d" i) (i * i) v
      | Error (te : Engine.task_error) -> (
        match te.te_exn with
        | Fault.Injected site ->
          check Alcotest.string
            (Fmt.str "fault site of slot %d" i)
            (Fmt.str "engine.task:%d:0" i)
            site
        | e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)))
    reference;
  check Alcotest.int "healthy results survive"
    (n - k)
    (List.length (List.filter (function Ok _ -> true | _ -> false) reference));
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.string)
        (Fmt.str "jobs=%d byte-identical to jobs=1" jobs)
        (show_results reference)
        (show_results (run jobs)))
    [ 2; 4; 8 ]

let test_engine_retries_recover () =
  let n = 32 in
  let run ~retries jobs =
    Fault.with_faults ~seed:(seed ()) ~raise_rate:0.25 (fun () ->
        Engine.map_result ~jobs ~retries (fun x -> x + 1) (List.init n Fun.id))
  in
  let failures rs =
    List.length (List.filter (function Error _ -> true | _ -> false) rs)
  in
  let without = failures (run ~retries:0 1) in
  let with_retries = failures (run ~retries:3 1) in
  check Alcotest.bool "retries only reduce the failure count" true
    (with_retries <= without);
  (* each attempt draws a fresh site, so with a 0.25 rate and 3 retries
     essentially every task recovers *)
  check Alcotest.bool "some task failed without retries" true (without > 0);
  check (Alcotest.list Alcotest.string) "retried run deterministic across jobs"
    (show_results (run ~retries:3 1))
    (show_results (run ~retries:3 4))

let test_engine_retry_attempts_counted () =
  (* raise_rate 1.0: every attempt fails, so a task granted r retries
     records r+1 attempts *)
  let rs =
    Fault.with_faults ~seed:(seed ()) ~raise_rate:1.0 (fun () ->
        Engine.map_result ~jobs:2 ~retries:2 Fun.id [ 1; 2; 3 ])
  in
  List.iter
    (function
      | Ok _ -> Alcotest.fail "rate 1.0 cannot succeed"
      | Error (te : Engine.task_error) ->
        check Alcotest.int "attempts" 3 te.te_attempts)
    rs

let test_engine_map_raises_earliest () =
  (* Engine.map under faults surfaces the earliest failing task *)
  let result =
    Fault.with_faults ~seed:(seed ()) ~raise_rate:1.0 (fun () ->
        match Engine.map ~jobs:3 Fun.id (List.init 8 Fun.id) with
        | _ -> None
        | exception Fault.Injected site -> Some site)
  in
  check
    (Alcotest.option Alcotest.string)
    "earliest task's fault" (Some "engine.task:0:0") result

let test_spin_faults_keep_results () =
  (* slow-worker simulation: results are unaffected, merely delayed *)
  let rs =
    Fault.with_faults ~seed:(seed ()) ~spin_rate:1.0 ~spin_iters:1000
      (fun () -> Engine.map ~jobs:4 (fun x -> x * 2) (List.init 16 Fun.id))
  in
  check (Alcotest.list Alcotest.int) "results survive spinning"
    (List.init 16 (fun x -> x * 2))
    rs

let test_budget_starvation () =
  Fault.with_faults ~seed:(seed ()) ~starve_rate:1.0 ~starve_steps:2
    (fun () ->
      let b = Budget.create ~label:"victim" ~max_steps:1000 () in
      check Alcotest.bool "1" true (Budget.tick b);
      check Alcotest.bool "2" true (Budget.tick b);
      check Alcotest.bool "starved on 3" false (Budget.tick b);
      match Budget.exhausted b with
      | Some (Budget.Starved l) -> check Alcotest.string "label" "victim" l
      | r ->
        Alcotest.fail
          (Fmt.str "expected starvation, got %a"
             Fmt.(option Budget.pp_reason)
             r))

let sample =
  "program main\n\
   integer n\n\
   n = 6\n\
   call work(n)\n\
   end\n\
   subroutine work(k)\n\
   integer k\n\
   print *, k, k * 7\n\
   end\n"

(* End to end: a starved solver degrades the analysis instead of
   crashing it, and never invents constants. *)
let test_starved_analysis_degrades_soundly () =
  let open Ipcp_core in
  let prog = Ipcp_frontend.Sema.parse_and_resolve sample in
  let full = Driver.analyze Config.default prog in
  let full_count = Driver.constants_count full in
  Fault.with_faults ~seed:(seed ()) ~starve_rate:1.0 ~starve_steps:0
    (fun () ->
      let t = Driver.analyze Config.default prog in
      check Alcotest.bool "solver reports degradation" true
        (Driver.degraded t <> []);
      check Alcotest.bool "starvation is the reason" true
        (List.exists
           (function Budget.Starved _ -> true | _ -> false)
           (Driver.degraded t));
      check Alcotest.bool "no invented constants" true
        (Driver.constants_count t <= full_count));
  check Alcotest.bool "full analysis finds constants" true (full_count > 0)

let suite =
  [
    ("fault decisions deterministic", `Quick, test_inject_deterministic);
    ("fault seeds differ", `Quick, test_different_seeds_differ);
    ("engine contains raising tasks", `Quick,
     test_engine_containment_across_jobs);
    ("engine retries recover", `Quick, test_engine_retries_recover);
    ("engine retry attempts counted", `Quick,
     test_engine_retry_attempts_counted);
    ("engine map raises earliest fault", `Quick,
     test_engine_map_raises_earliest);
    ("spin faults keep results", `Quick, test_spin_faults_keep_results);
    ("budget starvation", `Quick, test_budget_starvation);
    ("starved analysis degrades soundly", `Quick,
     test_starved_analysis_degrades_soundly);
  ]
