(* Unit tests for the deterministic work pool: input-order results at
   every jobs count, exception propagation, degenerate inputs, and the
   per-domain telemetry merge. *)

open Ipcp_telemetry

let check = Alcotest.check

let test_map_preserves_order () =
  let items = List.init 37 Fun.id in
  let expected = List.map (fun x -> x * x) items in
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.int)
        (Fmt.str "jobs=%d" jobs)
        expected
        (Ipcp_engine.Engine.map ~jobs (fun x -> x * x) items))
    [ 1; 2; 4; 8 ]

let test_map_degenerate_inputs () =
  check (Alcotest.list Alcotest.int) "empty list" []
    (Ipcp_engine.Engine.map ~jobs:4 Fun.id []);
  check (Alcotest.list Alcotest.int) "more jobs than items" [ 10; 20 ]
    (Ipcp_engine.Engine.map ~jobs:16 (fun x -> x * 10) [ 1; 2 ])

let test_map_exception_propagates () =
  (* a failing item aborts the map; the earliest failing item wins *)
  match
    Ipcp_engine.Engine.map ~jobs:3
      (fun x -> if x mod 2 = 1 then failwith (string_of_int x) else x)
      [ 0; 1; 2; 3 ]
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure m -> check Alcotest.string "earliest failing item" "1" m

let test_iter_runs_everything () =
  let hits = Array.make 16 0 in
  Ipcp_engine.Engine.iter ~jobs:4
    (fun i -> hits.(i) <- hits.(i) + 1)
    (List.init 16 Fun.id);
  Array.iteri
    (fun i n -> check Alcotest.int (Fmt.str "item %d ran once" i) 1 n)
    hits

let test_pool_merges_worker_telemetry () =
  let t = Telemetry.create () in
  let results =
    Telemetry.with_reporter t (fun () ->
        Ipcp_engine.Engine.map ~jobs:2
          (fun x ->
            Telemetry.span "task" ignore;
            Telemetry.incr "task.count";
            x)
          [ 1; 2; 3; 4 ])
  in
  check (Alcotest.list Alcotest.int) "results" [ 1; 2; 3; 4 ] results;
  check
    (Alcotest.option Alcotest.int)
    "counters from all workers merged" (Some 4)
    (Telemetry.counter t "task.count");
  check
    (Alcotest.option Alcotest.int)
    "pool bookkeeping counters" (Some 4)
    (Telemetry.counter t "engine.tasks");
  let rec flatten (s : Telemetry.span_snapshot) =
    s.sp_name :: List.concat_map flatten s.sp_children
  in
  let names = List.concat_map flatten (Telemetry.spans t) in
  let is_pool n =
    String.length n >= 12 && String.sub n 0 12 = "pool:domain-"
  in
  check Alcotest.bool "per-domain span group present" true
    (List.exists is_pool names);
  check Alcotest.bool "worker spans grafted into parent" true
    (List.mem "task" names)

let test_sequential_path_no_pool_counters () =
  (* jobs=1 must be the plain sequential path: no domains, no pool spans *)
  let t = Telemetry.create () in
  let results =
    Telemetry.with_reporter t (fun () ->
        Ipcp_engine.Engine.map ~jobs:1
          (fun x ->
            Telemetry.incr "task.count";
            x)
          [ 1; 2; 3 ])
  in
  check (Alcotest.list Alcotest.int) "results" [ 1; 2; 3 ] results;
  check
    (Alcotest.option Alcotest.int)
    "counters recorded directly" (Some 3)
    (Telemetry.counter t "task.count");
  check
    (Alcotest.option Alcotest.int)
    "no pool bookkeeping" None
    (Telemetry.counter t "engine.pools")

let test_default_jobs_positive () =
  check Alcotest.bool "at least one domain" true
    (Ipcp_engine.Engine.default_jobs () >= 1)

let suite =
  [
    ("engine map preserves order", `Quick, test_map_preserves_order);
    ("engine map degenerate inputs", `Quick, test_map_degenerate_inputs);
    ("engine map propagates exceptions", `Quick, test_map_exception_propagates);
    ("engine iter runs everything", `Quick, test_iter_runs_everything);
    ("engine pool merges worker telemetry", `Quick,
     test_pool_merges_worker_telemetry);
    ("engine jobs=1 is the sequential path", `Quick,
     test_sequential_path_no_pool_counters);
    ("engine default jobs positive", `Quick, test_default_jobs_positive);
  ]
