(* Robustness fuzzing: the frontend must never crash — every malformed
   input is rejected with a located {!Loc.Error}, and every accepted input
   goes on to behave deterministically. *)

open Ipcp_frontend
open Ipcp_support

(* random printable-ish strings biased toward MiniFort's alphabet *)
let fuzz_string rng len =
  let pieces =
    [
      "program"; "subroutine"; "function"; "end"; "do"; "if"; "then"; "else";
      "call"; "goto"; "integer"; "real"; "common"; "print"; "read"; "x"; "y";
      "n"; "i"; "("; ")"; ","; "="; "+"; "-"; "*"; "/"; "**"; ".lt."; ".and.";
      ".true."; "'str'"; "1"; "42"; "3.14"; "\n"; " "; "!"; "&"; "/blk/";
      "10"; "."; ".."; "'"; "e"; "d1";
    ]
  in
  let buf = Buffer.create 64 in
  for _ = 1 to len do
    Buffer.add_string buf (Prng.choose rng pieces);
    if Prng.chance rng 0.3 then Buffer.add_char buf ' '
  done;
  Buffer.contents buf

let prop_lexer_total =
  QCheck2.Test.make ~name:"lexer never crashes on fuzz input" ~count:500
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let rng = Prng.create seed in
      let src = fuzz_string rng (Prng.range rng 1 80) in
      match Lexer.tokenize src with
      | _ -> true
      | exception Loc.Error _ -> true)

let prop_parser_total =
  QCheck2.Test.make ~name:"parser never crashes on fuzz input" ~count:500
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let rng = Prng.create seed in
      let src = fuzz_string rng (Prng.range rng 1 120) in
      match Parser.parse_program src with
      | _ -> true
      | exception Loc.Error _ -> true)

let prop_sema_total =
  QCheck2.Test.make ~name:"sema never crashes on fuzz input" ~count:500
    (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let rng = Prng.create seed in
      let src =
        "program t\n" ^ fuzz_string rng (Prng.range rng 1 60) ^ "\nend\n"
      in
      match Sema.parse_and_resolve src with
      | _ -> true
      | exception Loc.Error _ -> true)

(* byte-level garbage, including control characters *)
let prop_lexer_binary_garbage =
  QCheck2.Test.make ~name:"lexer survives raw bytes" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 60))
    (fun src ->
      match Lexer.tokenize src with
      | _ -> true
      | exception Loc.Error _ -> true)

(* accepted fuzz programs interpret deterministically and within fuel *)
let prop_accepted_fuzz_runs =
  QCheck2.Test.make ~name:"accepted fuzz programs run deterministically"
    ~count:200 (QCheck2.Gen.int_range 1 100_000) (fun seed ->
      let rng = Prng.create seed in
      let src =
        "program t\n" ^ fuzz_string rng (Prng.range rng 1 40) ^ "\nend\n"
      in
      match Sema.parse_and_resolve src with
      | exception Loc.Error _ -> true
      | prog ->
        let r1 = Ipcp_interp.Interp.run ~fuel:50_000 prog in
        let r2 = Ipcp_interp.Interp.run ~fuel:50_000 prog in
        r1.outputs = r2.outputs && r1.outcome = r2.outcome)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lexer_total;
      prop_parser_total;
      prop_sema_total;
      prop_lexer_binary_garbage;
      prop_accepted_fuzz_runs;
    ]
