(* Multi-error diagnostics: the Diagnostics accumulator itself, and
   frontend recovery — one Sema.check pass surfaces every independent
   lexical, syntax and semantic problem instead of stopping at the
   first. *)

open Ipcp_frontend
module D = Ipcp_support.Diagnostics

let check = Alcotest.check

(* ---- the accumulator ---- *)

let test_accumulator_counts () =
  let d = D.create () in
  check Alcotest.bool "fresh is empty" true (D.is_empty d);
  D.add d (D.diagnostic ~file:"a.f" ~line:1 ~col:2 ~code:"E-PARSE" "first");
  D.add d
    (D.diagnostic ~severity:D.Warning ~file:"a.f" ~line:3 ~col:4
       ~code:"W-TEST" "second");
  D.add d (D.diagnostic ~file:"b.f" ~line:5 ~col:6 ~code:"E-SEMA" "third");
  check Alcotest.int "count" 3 (D.count d);
  check Alcotest.int "errors" 2 (D.error_count d);
  check Alcotest.int "warnings" 1 (D.warning_count d);
  check Alcotest.bool "not empty" false (D.is_empty d)

let test_report_order_and_format () =
  let d = D.create () in
  D.add d (D.diagnostic ~file:"x.f" ~line:2 ~col:7 ~code:"E-PARSE" "boom");
  D.add d
    (D.diagnostic ~severity:D.Warning ~file:"x.f" ~line:9 ~col:1 ~code:"W-X"
       "later");
  check Alcotest.string "rendered, report order"
    "x.f:2:7: error[E-PARSE]: boom\nx.f:9:1: warning[W-X]: later\n"
    (Fmt.str "%a" D.pp d);
  check Alcotest.string "summary" "1 error(s), 1 warning(s)"
    (Fmt.str "%a" D.pp_summary d)

(* ---- frontend recovery ---- *)

let diags_of src =
  match Sema.check ~file:"t.f" src with
  | Ok _ -> Alcotest.fail "expected diagnostics"
  | Error d -> d

let codes d = List.map (fun (i : D.diagnostic) -> i.d_code) (D.to_list d)

(* the acceptance program: three independent problems, one pass *)
let test_multi_error_program () =
  let d =
    diags_of
      "program main\ninteger x\nx = )\nx = 3 +\ncall nosuch(1)\nend\n"
  in
  check Alcotest.bool "at least 3 diagnostics" true (D.count d >= 3);
  check Alcotest.bool "parse errors present" true
    (List.mem "E-PARSE" (codes d));
  check Alcotest.bool "semantic error present" true
    (List.mem "E-SEMA" (codes d));
  (* each is independently located *)
  let lines = List.map (fun (i : D.diagnostic) -> i.d_line) (D.to_list d) in
  check Alcotest.bool "errors on three distinct lines" true
    (List.length (List.sort_uniq compare lines) >= 3)

let test_lexical_recovery () =
  (* bad characters on two lines: both reported, parsing continues *)
  let d = diags_of "program main\ninteger x\nx = 1 @ 2\nx = ?\nend\n" in
  let lex =
    List.filter (fun (i : D.diagnostic) -> i.d_code = "E-LEX") (D.to_list d)
  in
  check Alcotest.bool "two lexical errors" true (List.length lex >= 2)

let test_unit_boundary_recovery () =
  (* a broken subroutine header must not swallow its sibling units'
     problems: main still resolves, and the later unknown call is seen *)
  let d =
    diags_of
      "program main\n\
       integer x\n\
       x = 1\n\
       call gone(x)\n\
       end\n\
       subroutine broken(\n\
       integer y\n\
       end\n"
  in
  check Alcotest.bool "parse error of broken unit reported" true
    (List.mem "E-PARSE" (codes d));
  check Alcotest.bool "semantic error of main reported too" true
    (List.mem "E-SEMA" (codes d))

let test_statement_recovery_keeps_unit () =
  (* statement-level errors are dropped; the surrounding unit still
     resolves, so no cascading unknown-procedure error appears *)
  let d =
    diags_of
      "program main\n\
       integer x\n\
       x = )\n\
       call work(1)\n\
       end\n\
       subroutine work(k)\n\
       integer k\n\
       k = (\n\
       end\n"
  in
  check Alcotest.bool "both statement errors reported" true
    (List.length
       (List.filter (fun (i : D.diagnostic) -> i.d_code = "E-PARSE")
          (D.to_list d))
    >= 2);
  check Alcotest.bool "no cascading unknown-subroutine error" false
    (List.exists
       (fun (i : D.diagnostic) ->
         i.d_code = "E-SEMA"
         &&
         let n = String.length i.d_message in
         let needle = "work" in
         let m = String.length needle in
         let rec go j =
           j + m <= n && (String.sub i.d_message j m = needle || go (j + 1))
         in
         go 0)
       (D.to_list d))

let test_clean_program_is_ok () =
  match
    Sema.check
      "program main\ninteger n\nn = 2\ncall p(n)\nend\nsubroutine p(a)\n\
       integer a\nprint *, a\nend\n"
  with
  | Ok prog ->
    check Alcotest.int "both units resolved" 2
      (List.length prog.Prog.procs)
  | Error d -> Alcotest.fail (Fmt.str "unexpected diagnostics:@.%a" D.pp d)

let test_recovery_deterministic () =
  let src = "program main\ninteger x\nx = )\nx = 3 +\ncall nosuch(1)\nend\n" in
  let render () = Fmt.str "%a" D.pp (diags_of src) in
  check Alcotest.string "same diagnostics on every run" (render ()) (render ())

let suite =
  [
    ("diagnostics accumulator", `Quick, test_accumulator_counts);
    ("diagnostics format and order", `Quick, test_report_order_and_format);
    ("multi-error program (>=3)", `Quick, test_multi_error_program);
    ("lexical recovery", `Quick, test_lexical_recovery);
    ("unit boundary recovery", `Quick, test_unit_boundary_recovery);
    ("statement recovery keeps unit", `Quick,
     test_statement_recovery_keeps_unit);
    ("clean program is Ok", `Quick, test_clean_program_is_ok);
    ("recovery deterministic", `Quick, test_recovery_deterministic);
  ]
