(* Tests for the FORTRAN intrinsics (abs/min/max/mod) across the pipeline:
   sema typing, interpreter evaluation, symbolic constant folding, SCCP, and
   interprocedural propagation through intrinsic-valued arguments. *)

open Ipcp_frontend
open Ipcp_core

let check = Alcotest.check
let fail = Alcotest.fail

let resolve = Sema.parse_and_resolve

let outputs src = (Ipcp_interp.Interp.run (resolve src)).Ipcp_interp.Interp.outputs

let expect_sema_error src =
  match resolve src with
  | exception Loc.Error _ -> ()
  | _ -> fail "expected a semantic error"

let const_of (t : Driver.t) proc_name param_name : int option =
  let proc = Prog.find_proc_exn t.prog proc_name in
  Solver.constants_of t.solution proc_name
  |> List.find_map (fun (param, c) ->
         if Prog.param_name t.prog proc param = param_name then Some c else None)

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let test_interp_integer_intrinsics () =
  check (Alcotest.list Alcotest.string) "ints"
    [ "5 2 9 1" ]
    (outputs
       "program t\ninteger a, b\na = -5\nb = 9\nprint *, abs(a), min(2, b), \
        max(a, b), mod(b, 4)\nend\n")

let test_interp_real_intrinsics () =
  check (Alcotest.list Alcotest.string) "reals"
    [ "2.5 1.5 2.5" ]
    (outputs
       "program t\nreal x, y\nx = -2.5\ny = 1.5\nprint *, abs(x), min(2.5, \
        y), max(abs(x), y)\nend\n")

let test_interp_mod_negative () =
  (* OCaml's mod truncates toward zero, matching FORTRAN's MOD *)
  check (Alcotest.list Alcotest.string) "mod signs"
    [ "1 -1 1 -1" ]
    (outputs
       "program t\nprint *, mod(7, 3), mod(-7, 3), mod(7, -3), mod(-7, \
        -3)\nend\n")

let test_interp_mod_zero_fails () =
  let r = Ipcp_interp.Interp.run (resolve "program t\ninteger n\nn = 0\nprint *, mod(5, n)\nend\n") in
  match r.outcome with
  | Ipcp_interp.Interp.Failed _ -> ()
  | _ -> fail "mod by zero must fail"

let test_interp_nested_intrinsics () =
  check (Alcotest.list Alcotest.string) "nested"
    [ "4" ]
    (outputs "program t\nprint *, max(min(4, 9), abs(-2))\nend\n")

(* ------------------------------------------------------------------ *)
(* Sema *)

let test_sema_arity () =
  expect_sema_error "program t\nprint *, abs(1, 2)\nend\n";
  expect_sema_error "program t\nprint *, min(1)\nend\n"

let test_sema_mixed_types_rejected () =
  expect_sema_error "program t\nprint *, min(1, 2.5)\nend\n"

let test_sema_mod_requires_integers () =
  expect_sema_error "program t\nprint *, mod(1.5, 2.0)\nend\n"

let test_sema_logical_rejected () =
  expect_sema_error "program t\nprint *, abs(.true.)\nend\n"

let test_sema_array_shadows_intrinsic () =
  (* a declared array named mod makes mod(i) an array reference *)
  let p =
    resolve
      "program t\ninteger mod(3), i\ndo i = 1, 3\nmod(i) = i * 10\nend \
       do\nprint *, mod(2)\nend\n"
  in
  check Alcotest.int "resolved" 1 (List.length p.procs);
  check (Alcotest.list Alcotest.string) "array wins" [ "20" ]
    (Ipcp_interp.Interp.run p).outputs

let test_sema_user_function_shadows_intrinsic () =
  let p =
    resolve
      "program t\nprint *, abs(5)\nend\nfunction abs(x)\ninteger abs, \
       x\nabs = x + 100\nend\n"
  in
  check (Alcotest.list Alcotest.string) "user function wins" [ "105" ]
    (Ipcp_interp.Interp.run p).outputs

(* ------------------------------------------------------------------ *)
(* Analysis: intrinsics fold over constants *)

let test_analysis_intrinsic_folds_in_jf () =
  (* the actual is mod(n, 4) with constant n: polynomial jump functions
     fold it *)
  let t =
    Driver.analyze Config.polynomial_with_mod
      (resolve
         "program t\ninteger n\nn = 10\ncall s(mod(n, 4), max(n, 3))\nend\n\
          subroutine s(a, b)\ninteger a, b\nprint *, a, b\nend\n")
  in
  check (Alcotest.option Alcotest.int) "mod folded" (Some 2) (const_of t "s" "a");
  check (Alcotest.option Alcotest.int) "max folded" (Some 10) (const_of t "s" "b")

let test_analysis_intrinsic_unknown_arg_is_bottom () =
  let t =
    Driver.analyze Config.polynomial_with_mod
      (resolve
         "program t\ninteger n\nread *, n\ncall s(abs(n))\nend\n\
          subroutine s(a)\ninteger a\nprint *, a\nend\n")
  in
  check (Alcotest.option Alcotest.int) "not constant" None (const_of t "s" "a")

let test_analysis_substitution_through_intrinsic () =
  let prog =
    resolve
      "program t\ninteger n, m\nn = 12\nm = mod(n, 5)\ncall s(m)\nprint *, \
       m\nend\nsubroutine s(a)\ninteger a\nprint *, a + abs(a)\nend\n"
  in
  let t = Driver.analyze Config.polynomial_with_mod prog in
  let prog', stats = Substitute.apply t in
  check Alcotest.bool "substituted" true (stats.Substitute.total > 0);
  let r1 = Ipcp_interp.Interp.run ~trace_entries:false prog in
  let r2 = Ipcp_interp.Interp.run ~trace_entries:false prog' in
  check (Alcotest.list Alcotest.string) "behaviour preserved" r1.outputs r2.outputs

(* symbolic folding mirrors the interpreter exactly *)
let prop_fold_matches_interp =
  QCheck2.Test.make ~name:"intrinsic folding matches interpreter" ~count:200
    QCheck2.Gen.(pair (int_range (-30) 30) (int_range (-30) 30))
    (fun (a, b) ->
      let run_src intr args =
        let src =
          Fmt.str "program t\nprint *, %s(%s)\nend\n" intr
            (String.concat ", " (List.map string_of_int args))
        in
        match (Ipcp_interp.Interp.run (resolve src)).outputs with
        | [ line ] -> Some (int_of_string (String.trim line))
        | _ -> None
      in
      let check_one intr prog_intr args =
        let via_interp =
          match run_src intr args with v -> v | exception _ -> None
        in
        let via_fold = Ipcp_analysis.Symbolic.fold_intrinsic prog_intr args in
        (* the interpreter faults exactly when folding declines (mod 0) *)
        via_interp = via_fold
      in
      check_one "abs" Prog.Iabs [ a ]
      && check_one "min" Prog.Imin [ a; b ]
      && check_one "max" Prog.Imax [ a; b ]
      && check_one "mod" Prog.Imod [ a; b ])

let suite =
  [
    ("interp integer intrinsics", `Quick, test_interp_integer_intrinsics);
    ("interp real intrinsics", `Quick, test_interp_real_intrinsics);
    ("interp mod sign behaviour", `Quick, test_interp_mod_negative);
    ("interp mod by zero fails", `Quick, test_interp_mod_zero_fails);
    ("interp nested intrinsics", `Quick, test_interp_nested_intrinsics);
    ("sema arity", `Quick, test_sema_arity);
    ("sema mixed types rejected", `Quick, test_sema_mixed_types_rejected);
    ("sema mod requires integers", `Quick, test_sema_mod_requires_integers);
    ("sema logical rejected", `Quick, test_sema_logical_rejected);
    ("sema array shadows intrinsic", `Quick, test_sema_array_shadows_intrinsic);
    ("sema user function shadows intrinsic", `Quick,
      test_sema_user_function_shadows_intrinsic);
    ("analysis folds intrinsics in jump functions", `Quick,
      test_analysis_intrinsic_folds_in_jf);
    ("analysis unknown intrinsic arg is bottom", `Quick,
      test_analysis_intrinsic_unknown_arg_is_bottom);
    ("substitution through intrinsics", `Quick,
      test_analysis_substitution_through_intrinsic);
    QCheck_alcotest.to_alcotest prop_fold_matches_interp;
  ]
