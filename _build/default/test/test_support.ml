(* Unit and property tests for the support library: worklists, the
   deterministic PRNG, and numeric summaries. *)

open Ipcp_support

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Worklist *)

let test_worklist_fifo () =
  let w = Worklist.create () in
  Worklist.push w 1;
  Worklist.push w 2;
  Worklist.push w 3;
  check (Alcotest.option Alcotest.int) "first" (Some 1) (Worklist.pop w);
  check (Alcotest.option Alcotest.int) "second" (Some 2) (Worklist.pop w);
  check (Alcotest.option Alcotest.int) "third" (Some 3) (Worklist.pop w);
  check (Alcotest.option Alcotest.int) "empty" None (Worklist.pop w)

let test_worklist_dedup () =
  let w = Worklist.create () in
  Worklist.push w 7;
  Worklist.push w 7;
  Worklist.push w 7;
  check Alcotest.int "queued once" 1 (Worklist.length w)

let test_worklist_reinsertion_after_pop () =
  let w = Worklist.create () in
  Worklist.push w 7;
  ignore (Worklist.pop w);
  Worklist.push w 7;
  check Alcotest.int "can requeue after pop" 1 (Worklist.length w)

let test_worklist_drain_with_pushes () =
  (* drain processes items pushed during the drain *)
  let w = Worklist.of_list [ 1 ] in
  let seen = ref [] in
  Worklist.drain w (fun x ->
      seen := x :: !seen;
      if x < 5 then Worklist.push w (x + 1));
  check (Alcotest.list Alcotest.int) "chain processed" [ 1; 2; 3; 4; 5 ]
    (List.rev !seen)

let prop_worklist_processes_each_once =
  QCheck2.Test.make ~name:"drain visits each pushed item exactly once"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 20))
    (fun items ->
      let w = Worklist.of_list items in
      let counts = Hashtbl.create 16 in
      Worklist.drain w (fun x ->
          Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x)));
      Hashtbl.fold (fun _ c acc -> acc && c = 1) counts true)

(* ------------------------------------------------------------------ *)
(* PRNG *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let sa = List.init 20 (fun _ -> Prng.int a 1000) in
  let sb = List.init 20 (fun _ -> Prng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same stream" sa sb

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let sa = List.init 20 (fun _ -> Prng.int a 1000) in
  let sb = List.init 20 (fun _ -> Prng.int b 1000) in
  check Alcotest.bool "different streams" true (sa <> sb)

let prop_prng_int_in_bounds =
  QCheck2.Test.make ~name:"int stays in bounds" ~count:200
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.int rng bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prop_prng_range_inclusive =
  QCheck2.Test.make ~name:"range is inclusive" ~count:200
    QCheck2.Gen.(pair (int_range 0 10_000) (pair (int_range (-50) 50) (int_range 0 100)))
    (fun (seed, (lo, span)) ->
      let hi = lo + span in
      let rng = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.range rng lo hi in
          v >= lo && v <= hi)
        (List.init 50 Fun.id))

let test_prng_choose_covers () =
  let rng = Prng.create 7 in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 200 do
    Hashtbl.replace seen (Prng.choose rng [ "a"; "b"; "c" ]) ()
  done;
  check Alcotest.int "all choices seen" 3 (Hashtbl.length seen)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 9 in
  let original = List.init 10 Fun.id in
  let shuffled = Prng.shuffle rng original in
  check (Alcotest.list Alcotest.int) "same multiset" original
    (List.sort compare shuffled)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1; 2; 3; 4 ]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean [])

let test_stats_median () =
  check Alcotest.int "odd" 3 (Stats.median [ 5; 1; 3 ]);
  check Alcotest.int "even (lower)" 2 (Stats.median [ 4; 1; 2; 3 ]);
  check Alcotest.int "empty" 0 (Stats.median [])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.stddev []);
  check (Alcotest.float 1e-9) "singleton" 0.0 (Stats.stddev [ 7 ]);
  check (Alcotest.float 1e-9) "constant list" 0.0 (Stats.stddev [ 4; 4; 4 ]);
  (* population stddev of [2;4;4;4;5;5;7;9] is exactly 2 *)
  check (Alcotest.float 1e-9) "known value" 2.0
    (Stats.stddev [ 2; 4; 4; 4; 5; 5; 7; 9 ])

let test_stats_percentile () =
  check Alcotest.int "empty" 0 (Stats.percentile [] 50.0);
  check Alcotest.int "singleton p0" 7 (Stats.percentile [ 7 ] 0.0);
  check Alcotest.int "singleton p100" 7 (Stats.percentile [ 7 ] 100.0);
  let evens = [ 4; 1; 2; 3 ] in
  check Alcotest.int "even-length p50 = lower middle" 2
    (Stats.percentile evens 50.0);
  check Alcotest.int "even-length p50 agrees with median" (Stats.median evens)
    (Stats.percentile evens 50.0);
  check Alcotest.int "p100 is max" 4 (Stats.percentile evens 100.0);
  check Alcotest.int "p25 of 1..4" 1 (Stats.percentile evens 25.0);
  check Alcotest.int "odd-length p50 agrees with median" 3
    (Stats.percentile [ 5; 1; 3 ] 50.0);
  (* out-of-range p is clamped, not crashed on *)
  check Alcotest.int "p>100 clamps" 4 (Stats.percentile evens 250.0);
  check Alcotest.int "p<0 clamps" 1 (Stats.percentile evens (-10.0))

let test_stats_extremes () =
  check (Alcotest.option Alcotest.int) "max" (Some 9) (Stats.max_opt [ 3; 9; 1 ]);
  check (Alcotest.option Alcotest.int) "min" (Some 1) (Stats.min_opt [ 3; 9; 1 ]);
  check (Alcotest.option Alcotest.int) "empty max" None (Stats.max_opt []);
  check Alcotest.int "sum" 13 (Stats.sum [ 3; 9; 1 ])

let suite =
  [
    ("worklist fifo order", `Quick, test_worklist_fifo);
    ("worklist dedup", `Quick, test_worklist_dedup);
    ("worklist requeue after pop", `Quick, test_worklist_reinsertion_after_pop);
    ("worklist drain with pushes", `Quick, test_worklist_drain_with_pushes);
    QCheck_alcotest.to_alcotest prop_worklist_processes_each_once;
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seeds differ", `Quick, test_prng_seeds_differ);
    QCheck_alcotest.to_alcotest prop_prng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_prng_range_inclusive;
    ("prng choose covers", `Quick, test_prng_choose_covers);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("stats mean", `Quick, test_stats_mean);
    ("stats median", `Quick, test_stats_median);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats extremes", `Quick, test_stats_extremes);
  ]
