examples/quickstart.ml: Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_interp Pretty Sema Substitute
