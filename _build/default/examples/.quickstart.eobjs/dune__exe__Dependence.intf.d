examples/dependence.mli:
