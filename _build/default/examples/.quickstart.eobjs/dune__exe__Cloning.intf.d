examples/cloning.mli:
