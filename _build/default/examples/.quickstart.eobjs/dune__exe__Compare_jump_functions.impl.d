examples/compare_jump_functions.ml: Config Driver Fmt Ipcp_core Ipcp_frontend List Prog Sema String Substitute
