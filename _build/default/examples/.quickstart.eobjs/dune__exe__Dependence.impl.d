examples/dependence.ml: Config Dependence Driver Fmt Ipcp_analysis Ipcp_core Ipcp_frontend List Prog Sema Solver
