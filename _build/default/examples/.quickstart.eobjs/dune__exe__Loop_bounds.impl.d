examples/loop_bounds.ml: Config Driver Fmt Hashtbl Ipcp_core Ipcp_frontend List Prog Sema
