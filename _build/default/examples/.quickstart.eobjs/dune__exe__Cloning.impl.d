examples/cloning.ml: Cloning Config Driver Fmt Ipcp_core Ipcp_frontend Ipcp_interp List Pretty Prog Sema Substitute
