examples/loop_bounds.mli:
