examples/compare_jump_functions.mli:
