examples/quickstart.mli:
