examples/pipeline_tour.ml: Callgraph Config Driver Fmt Hashtbl Ipcp_analysis Ipcp_core Ipcp_frontend Ipcp_ir Jump_function List Modref Pretty Prog Sema Solver Substitute
