(* Quickstart: parse a MiniFort program, run interprocedural constant
   propagation, inspect the CONSTANTS sets, substitute, and check the
   transformed program still behaves the same.

     dune exec examples/quickstart.exe
*)

open Ipcp_frontend
open Ipcp_core

let source =
  {|
program main
  integer n, blocks
  common /cfg/ scale
  integer scale
  scale = 8
  n = 100
  blocks = n / 10
  call process(n, blocks)
end

subroutine process(total, nblk)
  integer total, nblk, i
  real work
  common /cfg/ sc
  integer sc
  work = 0.0
  do i = 1, nblk
    work = work + total * sc
  end do
  print *, 'processed', total, 'in', nblk, 'blocks of', sc
end
|}

let () =
  (* 1. front end: parse + resolve *)
  let prog = Sema.parse_and_resolve ~file:"quickstart" source in

  (* 2. analyze with the paper's recommended configuration:
        pass-through jump functions, return jump functions, MOD summaries *)
  let t = Driver.analyze Config.default prog in

  Fmt.pr "CONSTANTS sets discovered:@.%a@." Driver.pp_constants t;

  (* 3. substitute the constants into the source *)
  let prog', stats = Substitute.apply t in
  Fmt.pr "substituted %d constant uses@.@." stats.Substitute.total;
  Fmt.pr "transformed source:@.%a@." Pretty.pp_program prog';

  (* 4. both versions print the same thing *)
  let before = Ipcp_interp.Interp.run ~trace_entries:false prog in
  let after = Ipcp_interp.Interp.run ~trace_entries:false prog' in
  Fmt.pr "original output:    %a@."
    (Fmt.list ~sep:(Fmt.any " / ") Fmt.string)
    before.outputs;
  Fmt.pr "transformed output: %a@."
    (Fmt.list ~sep:(Fmt.any " / ") Fmt.string)
    after.outputs;
  assert (before.outputs = after.outputs);
  Fmt.pr "outputs agree.@."
