(* Dependence analysis: the paper's very first motivation (§1, citing Shen,
   Li & Yew).  Array subscripts like a(m*i + k) look *nonlinear* to a
   dependence analyzer when m and k are unknown symbols — but m and k are
   often interprocedural constants.  Shen et al. found ~50% of "nonlinear"
   subscripts became linear given interprocedural constants; this example
   shows the same effect end to end: the GCD test can suddenly prove loops
   independent.

     dune exec examples/dependence.exe
*)

open Ipcp_frontend
open Ipcp_core
open Ipcp_analysis

let source =
  {|
program main
  integer n
  n = 100
  call stride(n, 2, 1)
end

subroutine stride(n, m, k)
  integer n, m, k, i
  integer a(512)
  do i = 1, 512
    a(i) = 0
  end do
  do i = 1, n
    a(m * i + k) = a(m * i) + 1
  end do
  print *, a(3)
end
|}

let report label (t : Driver.t) ~seed_constants =
  let const_of (proc : Prog.proc) (v : Prog.var) =
    if not seed_constants then None
    else if Prog.is_scalar v && v.vty = Prog.Tint then
      match v.vkind with
      | Prog.Kformal i ->
        Ipcp_analysis.Const_lattice.const_value
          (Solver.lookup t.solution proc.pname (Prog.Pformal i))
      | Prog.Kglobal g ->
        Ipcp_analysis.Const_lattice.const_value
          (Solver.lookup t.solution proc.pname (Prog.Pglob (Prog.global_key g)))
      | _ -> None
    else None
  in
  let reports = Dependence.analyze_program ~const_of t.prog in
  let affine, nonlinear = Dependence.subscript_totals reports in
  Fmt.pr "== %s@." label;
  Fmt.pr "   subscripts: %d affine, %d nonlinear@." affine nonlinear;
  List.iter
    (fun (r : Dependence.loop_report) ->
      if r.lr_accesses <> [] then
        Fmt.pr "   %s: do %s (line %d): %d independent, %d dependent, %d \
                unanalyzable pair(s)@."
          r.lr_proc r.lr_var r.lr_loc.line r.lr_independent_pairs
          r.lr_dependent_pairs r.lr_unknown_pairs)
    reports;
  Fmt.pr "@."

let () =
  let prog = Sema.parse_and_resolve ~file:"dependence" source in
  let t = Driver.analyze Config.polynomial_with_mod prog in
  (* without interprocedural constants: m and k are opaque symbols *)
  report "without interprocedural constants" t ~seed_constants:false;
  (* with them: m = 2, k = 1, so a(2i+1) vs a(2i) — odd vs even elements —
     and the GCD test proves the accesses independent *)
  report "with interprocedural constants" t ~seed_constants:true
