(* The study in miniature: run all four forward jump functions (with and
   without return jump functions) on one program, show which constants each
   one finds, and print the per-configuration substitution counts — a
   two-row slice of the paper's Table 2.

     dune exec examples/compare_jump_functions.exe
*)

open Ipcp_frontend
open Ipcp_core

(* One program where each jump-function step matters:
   - f gets a literal (all four kinds see it);
   - g gets a locally computed constant (intraconst and up);
   - h gets a forwarded formal (pass-through and up);
   - k gets formal+1 (polynomial only);
   - r is set by an initializer: only return jump functions see it. *)
let source =
  {|
program main
  integer m, r
  m = 6
  call f(10)
  call g(m)
  call init(r)
  call useret(r)
end

subroutine f(a)
  integer a
  print *, 'f', a, a * 2
  call h(a)
end

subroutine h(b)
  integer b
  print *, 'h', b + 1
  call k(b + 5)
end

subroutine k(c)
  integer c
  print *, 'k', c, c - 1
end

subroutine g(d)
  integer d
  print *, 'g', d / 2
end

subroutine init(x)
  integer x
  x = 99
end

subroutine useret(y)
  integer y
  print *, 'r', y, y + 1
end
|}

let () =
  let prog = Sema.parse_and_resolve ~file:"compare" source in
  Fmt.pr "%-24s %-12s %s@." "configuration" "substituted" "CONSTANTS found";
  List.iter
    (fun (label, config) ->
      let t = Driver.analyze config prog in
      let _, stats = Substitute.apply t in
      let facts =
        Driver.constants t
        |> List.concat_map (fun (p, cs) ->
               List.map
                 (fun (param, c) ->
                   Fmt.str "%s.%s=%d" p
                     (Prog.param_name t.prog (Prog.find_proc_exn t.prog p) param)
                     c)
                 cs)
      in
      Fmt.pr "%-24s %-12d %s@." label stats.Substitute.total
        (String.concat " " facts))
    (Config.table2_configs
    @ [ ("intraprocedural", Config.intraprocedural_only) ])
