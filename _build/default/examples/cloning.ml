(* Procedure cloning guided by interprocedural constants — the application
   the paper cites from Metzger & Stroud: call sites passing *different*
   constants destroy each other at the meet; duplicating the callee per
   constant signature recovers them.

     dune exec examples/cloning.exe
*)

open Ipcp_frontend
open Ipcp_core

(* stencil is called with width 3 from one phase and width 5 from another:
   the meet of 3 and 5 is ⊥, so no constant survives — until cloning. *)
let source =
  {|
program main
  integer rounds, i
  rounds = 2
  do i = 1, rounds
    call phase1
    call phase2
  end do
end

subroutine phase1
  call stencil(3, 100)
end

subroutine phase2
  call stencil(5, 200)
end

subroutine stencil(width, npts)
  integer width, npts, i
  real acc
  acc = 0.0
  do i = 1, npts
    acc = acc + width
  end do
  print *, 'stencil', width, width / 2, npts
end
|}

let report label prog =
  let t = Driver.analyze Config.polynomial_with_mod prog in
  let _, stats = Substitute.apply t in
  Fmt.pr "== %s: %d procedures, %d constants substituted@." label
    (List.length prog.Prog.procs)
    stats.Substitute.total;
  Fmt.pr "%a@." Driver.pp_constants t;
  stats.Substitute.total

let () =
  let prog = Sema.parse_and_resolve ~file:"cloning" source in
  let before = report "before cloning" prog in

  let result = Cloning.clone prog in
  Fmt.pr "cloning created %d clone(s)@.@." result.clones_made;
  let after = report "after cloning" result.cloned in

  Fmt.pr "transformed source:@.%a@." Pretty.pp_program result.cloned;

  (* the transformation preserves behaviour *)
  let r1 = Ipcp_interp.Interp.run ~trace_entries:false prog in
  let r2 = Ipcp_interp.Interp.run ~trace_entries:false result.cloned in
  assert (r1.outputs = r2.outputs);
  Fmt.pr "behaviour preserved; constants %d -> %d@." before after
