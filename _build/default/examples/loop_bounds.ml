(* Loop bounds: the paper's motivating application (§1, after Eigenmann &
   Blume).  Interprocedural constants are often loop bounds; knowing them
   lets a parallelizing compiler compute trip counts and decide whether a
   loop is worth running in parallel.

   This example finds every do-loop whose bounds become compile-time
   constants once interprocedural constants are known — and shows that a
   purely intraprocedural analysis sees none of them.

     dune exec examples/loop_bounds.exe
*)

open Ipcp_frontend
open Ipcp_core

let source =
  {|
program driver
  integer npts, nlev
  common /mesh/ mrows, mcols
  integer mrows, mcols
  mrows = 512
  mcols = 256
  npts = 1024
  nlev = 4
  call smooth(npts, nlev)
  call transpose
end

subroutine smooth(n, levels)
  integer n, levels, i, l
  real v
  v = 0.0
  do l = 1, levels
    do i = 1, n
      v = v + i * l
    end do
  end do
  print *, 'smooth', v
end

subroutine transpose
  common /mesh/ nr, nc
  integer nr, nc, i, j
  real t
  t = 0.0
  do j = 1, nc
    do i = 1, nr
      t = t + 1.0
    end do
  end do
  print *, 'transpose', t
end
|}

(* Trip count of a do-loop whose bounds SCCP proved constant. *)
let loop_report (t : Driver.t) =
  List.concat_map
    (fun (proc : Prog.proc) ->
      let sccp = Driver.sccp_for t proc.pname in
      let const_of (e : Prog.expr) =
        match e.edesc with
        | Prog.Cint n -> Some n
        | Prog.Evar _ -> Hashtbl.find_opt sccp.expr_consts e.eid
        | _ -> None
      in
      let loops = ref [] in
      Prog.iter_stmts
        (fun s ->
          match s.sdesc with
          | Prog.Sdo (v, lo, hi, step, _) ->
            let step_c =
              match step with None -> Some 1 | Some e -> const_of e
            in
            let bound =
              match (const_of lo, const_of hi, step_c) with
              | Some l, Some h, Some st when st <> 0 ->
                Some (max 0 (((h - l) / st) + 1))
              | _ -> None
            in
            loops := (proc.pname, v.vname, s.sloc.line, bound) :: !loops
          | _ -> ())
        proc.pbody;
      List.rev !loops)
    t.prog.procs

let print_report label t =
  let loops = loop_report t in
  let known = List.filter (fun (_, _, _, b) -> b <> None) loops in
  Fmt.pr "%s: %d of %d loop trip counts known@." label (List.length known)
    (List.length loops);
  List.iter
    (fun (proc, var, line, bound) ->
      match bound with
      | Some n -> Fmt.pr "  %s: do %s (line %d) runs %d iterations@." proc var line n
      | None -> Fmt.pr "  %s: do %s (line %d) has unknown bounds@." proc var line)
    loops

let () =
  let prog = Sema.parse_and_resolve ~file:"loop_bounds" source in
  print_report "interprocedural"
    (Driver.analyze Config.polynomial_with_mod prog);
  Fmt.pr "@.";
  print_report "intraprocedural baseline"
    (Driver.analyze Config.intraprocedural_only prog)
