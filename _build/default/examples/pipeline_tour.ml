(* A tour of the analyzer's internals on one small program: the call graph,
   MOD/REF summaries, the per-procedure CFG and SSA tables, the return and
   forward jump functions, and the solved VAL sets — the paper's §4.1
   pipeline made visible.

     dune exec examples/pipeline_tour.exe
*)

open Ipcp_frontend
open Ipcp_core

let source =
  {|
program main
  integer n, total
  common /cfg/ scale
  integer scale
  data scale /4/
  n = 10
  total = 0
  call accum(n, total)
  call report(total)
end

subroutine accum(count, acc)
  integer count, acc, i
  common /cfg/ sc
  integer sc
  do i = 1, count
    acc = acc + i * sc
  end do
end

subroutine report(value)
  integer value
  print *, 'total', value, value / 2
end
|}

let () =
  let prog = Sema.parse_and_resolve ~file:"tour" source in
  let t = Driver.analyze Config.default prog in

  Fmt.pr "================ call graph ================@.%a@." Callgraph.pp t.cg;
  Fmt.pr "bottom-up order: %a@.@."
    (Fmt.list ~sep:(Fmt.any " -> ") Fmt.string)
    (Callgraph.bottom_up t.cg);

  Fmt.pr "================ MOD/REF summaries ================@.%a@." Modref.pp
    t.modref;

  Fmt.pr "================ per-procedure IR ================@.";
  List.iter
    (fun (p : Prog.proc) ->
      let ir = Hashtbl.find t.irs p.pname in
      Fmt.pr "%a@." Ipcp_ir.Cfg.pp ir.Jump_function.pi_cfg;
      Fmt.pr "%a@." Ipcp_ir.Ssa.pp ir.Jump_function.pi_ssa)
    prog.procs;

  Fmt.pr "================ return jump functions ================@.";
  Hashtbl.iter
    (fun name (rj : Jump_function.ret_jf) ->
      Fmt.pr "%s:@." name;
      if not (Ipcp_analysis.Symbolic.is_unknown rj.rj_result) then
        Fmt.pr "  result = %a@." Ipcp_analysis.Symbolic.pp rj.rj_result;
      Jump_function.Int_map.iter
        (fun i sym -> Fmt.pr "  formal %d <- %a@." i Ipcp_analysis.Symbolic.pp sym)
        rj.rj_formals;
      Jump_function.Str_map.iter
        (fun key sym -> Fmt.pr "  global %s <- %a@." key Ipcp_analysis.Symbolic.pp sym)
        rj.rj_globals)
    t.ret_jfs;

  Fmt.pr "@.================ forward jump functions ================@.";
  List.iter (fun sjf -> Fmt.pr "%a@." Jump_function.pp_site sjf) t.site_jfs;

  Fmt.pr "@.================ solved VAL sets ================@.";
  Fmt.pr "%a@." (Solver.pp_result prog) t.solution;
  Fmt.pr "solver stats: %d iterations, %d jump-function evaluations, %d meets@."
    t.solution.stats.iterations t.solution.stats.jf_evaluations
    t.solution.stats.meets;

  Fmt.pr "@.================ CONSTANTS and substitution ================@.";
  Fmt.pr "%a@." Driver.pp_constants t;
  let prog', stats = Substitute.apply t in
  Fmt.pr "substituted %d uses:@.%a@." stats.Substitute.total Pretty.pp_program
    prog'
